// Tests for the batched sampling path: bc::BatchSampler over
// graph::BatchedBidirectionalBfs.
//
// The contract under test is the tentpole of the batched kernel: every
// lane runs the scalar BidirectionalBfs algorithm with the scalar RNG
// draw order, so batch width 1 is bitwise identical to PathSampler, the
// cross-stream protocol preserves each stream's sequence at any width,
// and path draws stay uniform over the shortest-path set.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bc/batch_sampler.hpp"
#include "bc/sampler.hpp"
#include "epoch/state_frame.hpp"
#include "gen/barabasi_albert.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace distbc::bc {
namespace {

using graph::Vertex;

void expect_frames_equal(const epoch::StateFrame& a,
                         const epoch::StateFrame& b, const char* label) {
  ASSERT_EQ(a.raw().size(), b.raw().size()) << label;
  for (std::size_t i = 0; i < a.raw().size(); ++i)
    ASSERT_EQ(a.raw()[i], b.raw()[i]) << label << " slot " << i;
}

TEST(BatchSampler, WidthOneIsBitwiseIdenticalToPathSampler) {
  const graph::Graph graph = gen::barabasi_albert(4000, 4, 7);
  const Vertex n = graph.num_vertices();
  PathSampler scalar(graph, Rng(99).split(3));
  BatchSampler batched(graph, Rng(99).split(3), /*batch=*/1);
  epoch::StateFrame scalar_frame(n);
  epoch::StateFrame batched_frame(n);
  for (int i = 0; i < 2000; ++i) {
    scalar.sample(scalar_frame);
    batched.sample(batched_frame);
  }
  EXPECT_EQ(scalar.samples_taken(), batched.samples_taken());
  expect_frames_equal(scalar_frame, batched_frame, "B=1 vs scalar");
}

TEST(BatchSampler, CrossStreamProtocolPreservesEveryStreamSequence) {
  // Four streams share one width-8 kernel, driven the way the engine's
  // deterministic mode does: post one pair per stream, flush, finish in
  // stream order. Each stream's merged output must be bitwise identical
  // to four independent scalar samplers on the same streams.
  const graph::Graph graph =
      graph::largest_component(gen::erdos_renyi(600, 1500, 21));
  const Vertex n = graph.num_vertices();
  constexpr int kStreams = 4;
  constexpr std::uint64_t kPerStream = 300;

  epoch::StateFrame scalar_frame(n);
  for (int v = 0; v < kStreams; ++v) {
    PathSampler scalar(graph, Rng(5).split(static_cast<std::uint64_t>(v)));
    for (std::uint64_t i = 0; i < kPerStream; ++i)
      scalar.sample(scalar_frame);
  }

  auto kernel =
      std::make_shared<graph::BatchedBidirectionalBfs>(graph, /*batch=*/8);
  std::vector<BatchSampler> samplers;
  for (int v = 0; v < kStreams; ++v)
    samplers.emplace_back(graph, Rng(5).split(static_cast<std::uint64_t>(v)),
                          kernel);
  epoch::StateFrame batched_frame(n);
  std::uint64_t remaining[kStreams];
  for (auto& r : remaining) r = kPerStream;
  while (true) {
    std::vector<int> posted;
    for (int v = 0; v < kStreams; ++v) {
      if (remaining[v] == 0) continue;
      if (!samplers[static_cast<std::size_t>(v)].post_sample()) break;
      posted.push_back(v);
      --remaining[v];
    }
    if (posted.empty()) break;
    samplers[static_cast<std::size_t>(posted.front())].flush_staged();
    for (const int v : posted)
      samplers[static_cast<std::size_t>(v)].finish_sample(batched_frame);
  }
  EXPECT_EQ(batched_frame.tau(), kStreams * kPerStream);
  expect_frames_equal(scalar_frame, batched_frame, "cross-stream B=8");
}

TEST(BatchSampler, HandlesDisconnectedPairs) {
  // Two separate chains: roughly half the uniform pairs cross components
  // and must record_empty, the rest record real internal vertices. Width 1
  // preserves the scalar draw order, so the frames must be bitwise equal
  // even through the disconnected branch.
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex i = 0; i + 1 < 10; ++i) {
    edges.push_back({i, i + 1});
    edges.push_back({10 + i, 10 + i + 1});
  }
  const graph::Graph graph = graph::from_edges(20, edges);
  PathSampler scalar(graph, Rng(11).split(0));
  BatchSampler batched(graph, Rng(11).split(0), /*batch=*/1);
  epoch::StateFrame scalar_frame(20);
  epoch::StateFrame batched_frame(20);
  for (int i = 0; i < 512; ++i) {
    scalar.sample(scalar_frame);
    batched.sample(batched_frame);
  }
  EXPECT_EQ(batched_frame.tau(), 512u);
  // Both connected (counts recorded) and disconnected (tau-only) samples
  // must have occurred for the comparison to mean anything.
  EXPECT_GT(batched_frame.count_sum(), 0u);
  EXPECT_LT(batched_frame.count_sum(), 512u * 20u);
  expect_frames_equal(scalar_frame, batched_frame, "disconnected B=1");

  // And the wide kernel must account every sample on the same graph.
  BatchSampler wide(graph, Rng(12).split(0), /*batch=*/8);
  epoch::StateFrame wide_frame(20);
  wide.sample_batch(wide_frame, 512);
  EXPECT_EQ(wide_frame.tau(), 512u);
  EXPECT_GT(wide_frame.count_sum(), 0u);
}

TEST(BatchSampler, BatchTailSmallerThanWidth) {
  // Counts that are not multiples of the kernel width exercise the tail
  // chunk; totals must be exact.
  const graph::Graph graph =
      graph::largest_component(gen::erdos_renyi(300, 900, 33));
  BatchSampler batched(graph, Rng(2).split(1), /*batch=*/8);
  epoch::StateFrame frame(graph.num_vertices());
  batched.sample_batch(frame, 13);
  EXPECT_EQ(frame.tau(), 13u);
  EXPECT_EQ(batched.samples_taken(), 13u);
  batched.sample_batch(frame, 3);
  EXPECT_EQ(frame.tau(), 16u);
  EXPECT_EQ(batched.samples_taken(), 16u);
}

TEST(BatchSampler, PathSamplingStaysUniformAcrossLanes) {
  // Ladder with two independent 2-choice stages: 4 equally likely paths
  // 0 -> {1|2} -> 3 -> {4|5} -> 6 (the scalar kernel's uniformity
  // fixture), drawn through all four lanes of a batch. Chi-square over the
  // 4 path bins, df = 3: reject above 16.27 (p = 0.001).
  const graph::Graph graph = graph::from_edges(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}, {5, 6}});
  graph::BatchedBidirectionalBfs kernel(graph, /*batch=*/4);
  Rng rng(123);
  std::map<std::vector<Vertex>, int> histogram;
  constexpr int kRounds = 10000;  // 4 draws per round
  std::vector<Vertex> path;
  for (int round = 0; round < kRounds; ++round) {
    for (int lane = 0; lane < 4; ++lane) ASSERT_EQ(kernel.stage(0, 6), lane);
    kernel.run_staged();
    for (int lane = 0; lane < 4; ++lane) {
      ASSERT_TRUE(kernel.result(lane).connected);
      ASSERT_EQ(kernel.result(lane).distance, 4u);
      ASSERT_DOUBLE_EQ(kernel.result(lane).num_paths, 4.0);
      path.clear();
      kernel.sample_path(lane, rng, path);
      ++histogram[path];
    }
  }
  ASSERT_EQ(histogram.size(), 4u);
  const double expected = 4.0 * kRounds / 4.0;
  double chi_square = 0.0;
  for (const auto& [p, count] : histogram) {
    const double delta = count - expected;
    chi_square += delta * delta / expected;
  }
  EXPECT_LT(chi_square, 16.27);
}

TEST(BatchSampler, LaneResultsMatchScalarKernel) {
  // Per-lane results and touched counts equal the scalar kernel's on the
  // same pairs, across a full batch.
  const graph::Graph graph =
      graph::largest_component(gen::erdos_renyi(500, 1200, 44));
  const Vertex n = graph.num_vertices();
  graph::BidirectionalBfs scalar(n);
  graph::BatchedBidirectionalBfs batched(graph, /*batch=*/8);
  Rng rng(6);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::pair<Vertex, Vertex>> pairs;
    for (int lane = 0; lane < 8; ++lane) {
      const auto [s64, t64] = rng.next_distinct_pair(n);
      pairs.push_back(
          {static_cast<Vertex>(s64), static_cast<Vertex>(t64)});
    }
    batched.run(pairs);
    for (int lane = 0; lane < 8; ++lane) {
      const auto reference = scalar.run(graph, pairs[static_cast<std::size_t>(
                                                   lane)].first,
                                        pairs[static_cast<std::size_t>(lane)]
                                            .second);
      const auto& result = batched.result(lane);
      ASSERT_EQ(result.connected, reference.connected) << "lane " << lane;
      if (reference.connected) {
        EXPECT_EQ(result.distance, reference.distance) << "lane " << lane;
        EXPECT_EQ(result.num_paths, reference.num_paths) << "lane " << lane;
      }
      EXPECT_EQ(batched.lane_touched(lane), scalar.last_touched())
          << "lane " << lane;
    }
  }
}

}  // namespace
}  // namespace distbc::bc
