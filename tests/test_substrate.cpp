// The pluggable comm-substrate API (comm/substrate.hpp) and its threading
// through api::Session: substrate selection changes the modeled link
// economics - never the traffic and never the scores. Deterministic-mode
// results must be bitwise identical across mpisim x ncclsim under every
// aggregation topology and frame representation; the ncclsim all-reduce
// must price the NCCL ring closed form; Results report the substrate that
// ran them; and tuning profiles round-trip the substrate tag plus any
// keys a newer library wrote.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "comm/substrate.hpp"
#include "gen/barabasi_albert.hpp"
#include "graph/components.hpp"
#include "tune/tuner.hpp"

namespace distbc {
namespace {

// --- Substrate naming -------------------------------------------------------

TEST(SubstrateNames, RoundTripAndRejection) {
  EXPECT_STREQ(comm::substrate_name(comm::SubstrateKind::kMpisim), "mpisim");
  EXPECT_STREQ(comm::substrate_name(comm::SubstrateKind::kNcclsim),
               "ncclsim");
  for (const auto kind :
       {comm::SubstrateKind::kMpisim, comm::SubstrateKind::kNcclsim}) {
    const auto parsed = comm::substrate_from_name(comm::substrate_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(comm::substrate_from_name("nccl").has_value());
  EXPECT_FALSE(comm::substrate_from_name("").has_value());
  EXPECT_FALSE(comm::substrate_from_name("MPISIM").has_value());
}

// --- The modeled NCCL economics ---------------------------------------------

TEST(NcclSimModel, ProfileLayersOnTopOfTheBase) {
  comm::NetworkModel base;
  base.dedicated_cores = true;
  const comm::NetworkModel same =
      comm::network_model_for(comm::SubstrateKind::kMpisim, base);
  EXPECT_EQ(same.remote_latency_s, base.remote_latency_s);
  EXPECT_FALSE(same.ring_allreduce);

  const comm::NetworkModel nccl =
      comm::network_model_for(comm::SubstrateKind::kNcclsim, base);
  EXPECT_TRUE(nccl.ring_allreduce);
  EXPECT_GT(nccl.launch_latency_s, 0.0);
  EXPECT_EQ(nccl.ireduce_progression_factor, 1.0);
  EXPECT_EQ(nccl.ireduce_poll_cost_s, 0.0);
  // Base switches the profile must not clobber.
  EXPECT_TRUE(nccl.dedicated_cores);
  EXPECT_TRUE(nccl.enabled);

  comm::NetworkModel off = base;
  off.enabled = false;
  const comm::NetworkModel nccl_off =
      comm::network_model_for(comm::SubstrateKind::kNcclsim, off);
  EXPECT_FALSE(nccl_off.enabled);
  EXPECT_EQ(nccl_off.allreduce_cost(1 << 20, 4, 2).count(), 0);
}

TEST(NcclSimModel, AllreduceMatchesTheRingClosedForm) {
  const comm::NetworkModel nccl =
      comm::network_model_for(comm::SubstrateKind::kNcclsim, {});
  struct Shape {
    int ranks_per_node;
    int num_nodes;
  };
  for (const Shape shape : {Shape{4, 2}, Shape{8, 1}, Shape{2, 8}}) {
    const double total_ranks =
        static_cast<double>(shape.ranks_per_node * shape.num_nodes);
    const double alpha = shape.num_nodes > 1 ? nccl.remote_latency_s
                                             : nccl.local_latency_s;
    const double beta = shape.num_nodes > 1 ? nccl.remote_bandwidth_bps
                                            : nccl.local_bandwidth_bps;
    for (const std::uint64_t bytes :
         {std::uint64_t{4096}, std::uint64_t{1} << 20}) {
      const double steps = 2.0 * (total_ranks - 1.0);
      const double closed = nccl.launch_latency_s + steps * alpha +
                            steps / total_ranks *
                                static_cast<double>(bytes) / beta;
      const double charged =
          static_cast<double>(
              nccl.allreduce_cost(bytes, shape.ranks_per_node,
                                  shape.num_nodes)
                  .count()) *
          1e-9;
      // The model charges on an integer-nanosecond clock; allow that
      // quantum on top of the 1e-6 relative band.
      EXPECT_NEAR(charged, closed, 1e-6 * closed + 1.5e-9)
          << shape.ranks_per_node << "x" << shape.num_nodes << " @ "
          << bytes;
    }
  }
  // A single rank pays only the kernel launch.
  EXPECT_NEAR(static_cast<double>(nccl.allreduce_cost(1 << 20, 1, 1).count()),
              nccl.launch_latency_s * 1e9, 1.0);
}

// --- Bitwise parity through api::Session ------------------------------------

std::shared_ptr<const graph::Graph> parity_graph() {
  static const auto graph = std::make_shared<const graph::Graph>(
      graph::largest_component(gen::barabasi_albert(300, 3, 19)));
  return graph;
}

api::Config parity_config(comm::SubstrateKind substrate,
                          engine::FrameRep rep, bool hierarchical,
                          int tree_radix, int leader_radix) {
  api::Config config;
  config.ranks = 4;
  config.ranks_per_node = hierarchical ? 2 : 1;
  config.comm_substrate = substrate;
  config.seed = 97;
  config.exact_diameter = false;
  config.deterministic = true;
  config.virtual_streams = 4;
  config.epoch_base = 64;
  config.epoch_exponent = 0.0;
  config.frame_rep = rep;
  config.hierarchical = hierarchical;
  config.tree_radix = tree_radix;
  config.leader_radix = leader_radix;
  return config;
}

api::Result parity_run(const api::Config& config) {
  api::Session session(parity_graph(), config);
  api::BetweennessQuery query;
  query.epsilon = 0.15;
  api::Result result = session.run(query);
  EXPECT_TRUE(result.status.ok) << result.status.message;
  return result;
}

TEST(SubstrateParity, BitwiseScoresAcrossSubstratesTopologiesAndReps) {
  struct Topology {
    const char* name;
    bool hierarchical;
    int tree_radix;
    int leader_radix;
  };
  const Topology topologies[] = {
      {"flat", false, 0, 0},
      {"tree", false, 2, 0},
      {"two_level", true, 0, 2},
  };
  const engine::FrameRep reps[] = {engine::FrameRep::kDense,
                                   engine::FrameRep::kSparse,
                                   engine::FrameRep::kAuto};

  const api::Result reference =
      parity_run(parity_config(comm::SubstrateKind::kMpisim,
                               engine::FrameRep::kDense, false, 0, 0));
  ASSERT_GT(reference.samples, 0u);

  for (const Topology& topology : topologies) {
    for (const engine::FrameRep rep : reps) {
      // Per (topology, rep): the two substrates must agree bitwise with
      // the reference AND move identical traffic - a backend changes the
      // clock, never the bytes.
      std::uint64_t mpisim_total = 0;
      for (const auto substrate :
           {comm::SubstrateKind::kMpisim, comm::SubstrateKind::kNcclsim}) {
        const api::Result result = parity_run(
            parity_config(substrate, rep, topology.hierarchical,
                          topology.tree_radix, topology.leader_radix));
        const std::string label = std::string(topology.name) + "/" +
                                  epoch::frame_rep_name(rep) + "/" +
                                  comm::substrate_name(substrate);
        EXPECT_EQ(result.samples, reference.samples) << label;
        EXPECT_EQ(result.epochs, reference.epochs) << label;
        ASSERT_EQ(result.scores.size(), reference.scores.size()) << label;
        for (std::size_t v = 0; v < result.scores.size(); ++v)
          ASSERT_EQ(result.scores[v], reference.scores[v])
              << label << " vertex " << v;
        if (substrate == comm::SubstrateKind::kMpisim)
          mpisim_total = result.comm_volume.total();
        else
          EXPECT_EQ(result.comm_volume.total(), mpisim_total) << label;
      }
    }
  }
}

// --- Result attribution -----------------------------------------------------

TEST(SubstrateUsed, ResultsReportTheBackendThatRanThem) {
  const api::Result mpisim_result =
      parity_run(parity_config(comm::SubstrateKind::kMpisim,
                               engine::FrameRep::kDense, false, 0, 0));
  EXPECT_EQ(mpisim_result.substrate_used, "mpisim");
  EXPECT_STREQ(mpisim_result.comm_volume.substrate, "mpisim");

  const api::Result nccl_result =
      parity_run(parity_config(comm::SubstrateKind::kNcclsim,
                               engine::FrameRep::kSparse, false, 2, 0));
  EXPECT_EQ(nccl_result.substrate_used, "ncclsim");
  EXPECT_STREQ(nccl_result.comm_volume.substrate, "ncclsim");
}

TEST(SubstrateUsed, CommunicatorFreeRunsLeaveItEmpty) {
  // Below the exact threshold the query runs single-process Brandes: no
  // communicator exists, so no substrate is attributed.
  api::Config config;
  config.exact_threshold = 100000;
  api::Session session(parity_graph(), config);
  api::BetweennessQuery query;
  query.epsilon = 0.15;
  const api::Result result = session.run(query);
  ASSERT_TRUE(result.status.ok) << result.status.message;
  EXPECT_TRUE(result.substrate_used.empty());
}

TEST(CommVolumeTag, FirstNonEmptySubstrateWinsOnMerge) {
  comm::CommVolume sum;
  EXPECT_STREQ(sum.substrate, "");
  comm::CommVolume tagged;
  tagged.substrate = comm::substrate_name(comm::SubstrateKind::kNcclsim);
  tagged.reduce_bytes = 8;
  sum += tagged;
  EXPECT_STREQ(sum.substrate, "ncclsim");
  comm::CommVolume other;
  other.substrate = comm::substrate_name(comm::SubstrateKind::kMpisim);
  sum += other;  // already attributed: the first tag sticks
  EXPECT_STREQ(sum.substrate, "ncclsim");
}

// --- Config key and profile round-trips -------------------------------------

TEST(SubstrateConfig, KeyParsesAndSerializes) {
  api::Config config;
  ASSERT_TRUE(config.set("comm_substrate", "ncclsim").ok);
  EXPECT_EQ(config.comm_substrate, comm::SubstrateKind::kNcclsim);
  EXPECT_NE(config.serialize().find("comm_substrate = ncclsim"),
            std::string::npos);
  const auto status = config.set("comm_substrate", "infiniband");
  EXPECT_FALSE(status.ok);
  EXPECT_EQ(config.comm_substrate, comm::SubstrateKind::kNcclsim)
      << "rejected values must not clobber the config";
}

TEST(TuningProfile, SubstrateTagRoundTrips) {
  tune::TuningProfile profile;
  profile.shape = {4, 2, 1};
  profile.substrate = comm::SubstrateKind::kNcclsim;
  const std::string text = profile.serialize();
  EXPECT_NE(text.find("comm.substrate = ncclsim"), std::string::npos);
  const auto reparsed = tune::TuningProfile::parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->substrate, comm::SubstrateKind::kNcclsim);
  EXPECT_EQ(reparsed->shape, profile.shape);

  // A profile written before the substrate tag existed reads as mpisim.
  tune::TuningProfile legacy;
  std::string legacy_text = legacy.serialize();
  const auto pos = legacy_text.find("comm.substrate");
  ASSERT_NE(pos, std::string::npos);
  legacy_text.erase(pos, legacy_text.find('\n', pos) - pos + 1);
  const auto parsed = tune::TuningProfile::parse(legacy_text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->substrate, comm::SubstrateKind::kMpisim);

  // An unknown backend name is a malformed profile, not a silent default.
  EXPECT_FALSE(
      tune::TuningProfile::parse(legacy.serialize() + "comm.substrate = warp\n")
          .has_value());
}

TEST(TuningProfile, UnknownKeysSurviveTheRoundTrip) {
  tune::TuningProfile profile;
  profile.shape = {8, 4, 2};
  const std::string text = profile.serialize() +
                           "future.knob = 7\n"
                           "vendor.hint = fast-path\n";
  const auto parsed = tune::TuningProfile::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->extras.size(), 2u);
  EXPECT_EQ(parsed->extras[0].first, "future.knob");
  EXPECT_EQ(parsed->extras[0].second, "7");
  EXPECT_EQ(parsed->extras[1].first, "vendor.hint");
  EXPECT_EQ(parsed->extras[1].second, "fast-path");

  // serialize() re-emits them, so a newer library's profile passes
  // through an older one without losing fields.
  const std::string reserialized = parsed->serialize();
  EXPECT_NE(reserialized.find("future.knob = 7"), std::string::npos);
  EXPECT_NE(reserialized.find("vendor.hint = fast-path"), std::string::npos);
  const auto round_two = tune::TuningProfile::parse(reserialized);
  ASSERT_TRUE(round_two.has_value());
  EXPECT_EQ(round_two->extras, parsed->extras);
  EXPECT_EQ(round_two->shape, profile.shape);
}

}  // namespace
}  // namespace distbc
