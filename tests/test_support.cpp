// Unit tests for src/support: RNG, tables, options, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "support/options.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace distbc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b();
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(42);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  Rng s0_again = Rng(42).split(0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    const auto x = s0();
    EXPECT_EQ(x, s0_again());
    equal += x == s1();
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000003ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_bounded(bound), bound);
  }
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBoundedIsRoughlyUniform) {
  Rng rng(2024);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.next_bounded(kBuckets)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(Rng, NextDistinctPairNeverEqual) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto [s, t] = rng.next_distinct_pair(5);
    EXPECT_NE(s, t);
    EXPECT_LT(s, 5u);
    EXPECT_LT(t, 5u);
  }
}

TEST(Rng, NextDistinctPairUniformOverOrderedPairs) {
  Rng rng(13);
  constexpr std::uint64_t kN = 4;
  constexpr int kDraws = 120000;
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> histogram;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.next_distinct_pair(kN)];
  EXPECT_EQ(histogram.size(), kN * (kN - 1));
  const double expected = static_cast<double>(kDraws) / (kN * (kN - 1));
  for (const auto& [pair, count] : histogram)
    EXPECT_NEAR(count, expected, expected * 0.1);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_range(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(PickWeighted, RespectsWeights) {
  Rng rng(23);
  const std::uint64_t weights[] = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[pick_weighted(rng, weights, 3)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], 10000, 600);
  EXPECT_NEAR(counts[2], 30000, 900);
}

TEST(PickWeighted, DoubleWeights) {
  Rng rng(29);
  const double weights[] = {0.25, 0.75};
  int counts[2] = {0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[pick_weighted(rng, weights, 2)];
  EXPECT_NEAR(counts[0], 10000, 600);
}

TEST(PickWeighted, SingleElement) {
  Rng rng(31);
  const std::uint64_t weights[] = {42};
  EXPECT_EQ(pick_weighted(rng, weights, 1), 0u);
}

TEST(TablePrinter, AlignsColumnsAndFormats) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "123"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines equally wide.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_int(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::fmt_int(-1000), "-1,000");
  EXPECT_EQ(TablePrinter::fmt_int(0), "0");
  EXPECT_EQ(TablePrinter::fmt_bytes(512), "512.0 B");
  EXPECT_EQ(TablePrinter::fmt_bytes(2.5 * 1024 * 1024), "2.5 MiB");
  EXPECT_EQ(TablePrinter::fmt_ratio(7.412), "7.41x");
}

TEST(Options, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "ranks=16", "eps=0.01", "name=road",
                        "flag=true"};
  Options options(5, const_cast<char**>(argv));
  EXPECT_EQ(options.get_u64("ranks", 0), 16u);
  EXPECT_DOUBLE_EQ(options.get_double("eps", 0.0), 0.01);
  EXPECT_EQ(options.get_string("name", ""), "road");
  EXPECT_TRUE(options.get_bool("flag", false));
  EXPECT_EQ(options.get_u64("missing", 7), 7u);
  EXPECT_TRUE(options.has("ranks"));
  EXPECT_FALSE(options.has("missing"));
}

TEST(Options, DoubleDashIsBooleanFlagShorthand) {
  const char* argv[] = {"prog", "--json", "scale=0.5"};
  Options options(3, const_cast<char**>(argv));
  EXPECT_TRUE(options.get_bool("json", false));
  EXPECT_DOUBLE_EQ(options.get_double("scale", 0.0), 0.5);
}

TEST(Options, FinishAcceptsRegisteredKeys) {
  const char* argv[] = {"prog", "ranks=4", "--json"};
  Options options(3, const_cast<char**>(argv));
  options.describe("json", "emit JSON");
  EXPECT_EQ(options.get_u64("ranks", 1, "rank count"), 4u);
  // Every parsed key is registered: finish() returns instead of exiting.
  options.finish("test summary");
}

TEST(PhaseTimer, AccumulatesAndMerges) {
  PhaseTimer timer;
  timer.add(Phase::kDiameter, 1.0);
  timer.add(Phase::kDiameter, 0.5);
  timer.add(Phase::kSampling, 2.0);
  EXPECT_DOUBLE_EQ(timer.seconds(Phase::kDiameter), 1.5);
  EXPECT_DOUBLE_EQ(timer.total_s(), 3.5);

  PhaseTimer other;
  other.add(Phase::kSampling, 1.0);
  timer.merge(other);
  EXPECT_DOUBLE_EQ(timer.seconds(Phase::kSampling), 3.0);

  const int value = timer.timed(Phase::kStopCheck, [] { return 42; });
  EXPECT_EQ(value, 42);
  EXPECT_GE(timer.seconds(Phase::kStopCheck), 0.0);
}

TEST(PhaseTimer, PhaseNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    const auto name = phase_name(static_cast<Phase>(p));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(Phase::kCount));
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  const double first = timer.elapsed_s();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(timer.elapsed_s(), first);
  timer.restart();
  EXPECT_LT(timer.elapsed_s(), 1.0);
}

}  // namespace
}  // namespace distbc
