// Tests for the generic adaptive-sampling driver and the mean-distance
// estimator built on it (the paper's future-work generalization).
#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.hpp"
#include "adaptive/mean_distance.hpp"
#include "comm/substrate.hpp"
#include "mpisim/runtime.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/road.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "support/random.hpp"

namespace distbc::adaptive {
namespace {

TEST(MomentFrame, RecordsMoments) {
  MomentFrame frame;
  frame.record(2);
  frame.record(4);
  EXPECT_EQ(frame.count(), 2u);
  EXPECT_DOUBLE_EQ(frame.mean(), 3.0);
  // Unbiased variance of {2, 4} is 2.
  EXPECT_DOUBLE_EQ(frame.variance(), 2.0);
}

TEST(MomentFrame, MergeIsAdditive) {
  MomentFrame a;
  MomentFrame b;
  a.record(1);
  b.record(3);
  b.record(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(MomentFrame, EmptyAndSingleSampleEdgeCases) {
  MomentFrame frame;
  EXPECT_DOUBLE_EQ(frame.mean(), 0.0);
  EXPECT_DOUBLE_EQ(frame.variance(), 0.0);
  frame.record(7);
  EXPECT_DOUBLE_EQ(frame.mean(), 7.0);
  EXPECT_DOUBLE_EQ(frame.variance(), 0.0);  // undefined -> 0 by convention
}

TEST(MomentFrame, RawLayoutSupportsElementwiseReduce) {
  MomentFrame frame;
  frame.record(3);
  const auto raw = frame.raw();
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0], 1u);
  EXPECT_EQ(raw[1], 3u);
  EXPECT_EQ(raw[2], 9u);
}

TEST(BernsteinHalfWidth, ShrinksWithSamples) {
  double previous = 1e18;
  for (const std::uint64_t n : {10ull, 100ull, 1000ull, 10000ull}) {
    const double hw = bernstein_half_width(4.0, 20.0, 0.1, n);
    EXPECT_LT(hw, previous);
    previous = hw;
  }
}

TEST(BernsteinHalfWidth, VarianceTermDominatesAsymptotically) {
  // At large n the sqrt(V/n) term dwarfs the R/n term.
  const double hw = bernstein_half_width(4.0, 1000.0, 0.1, 1u << 24);
  const double variance_term =
      std::sqrt(2.0 * 4.0 * std::log(30.0) / (1u << 24));
  EXPECT_LT(hw, 2.5 * variance_term);
}

TEST(GenericDriver, AggregatesDeterministicCounts) {
  // A degenerate "sampler" that always records distance 1: the driver must
  // neither lose nor duplicate samples across threads/ranks/epochs.
  struct OneSampler {
    void sample(MomentFrame& frame) { frame.record(1); }
  };
  mpisim::RuntimeConfig config;
  config.num_ranks = 3;
  config.network = mpisim::NetworkModel::disabled();
  mpisim::Runtime runtime(config);
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    engine::EngineOptions options;
    options.threads_per_rank = 2;
    options.epoch_base = 10;
    options.epoch_exponent = 0.0;
    auto result = engine::run_epochs(
        world.get(), MomentFrame{}, [](std::uint64_t) { return OneSampler{}; },
        [](const MomentFrame& frame) { return frame.count() >= 500; },
        options);
    if (world->rank() == 0) {
      EXPECT_GE(result.aggregate.count(), 500u);
      EXPECT_DOUBLE_EQ(result.aggregate.mean(), 1.0);
      // With a trivially fast sampler the free-running worker threads can
      // satisfy the threshold within the first epoch; at least one epoch
      // must complete either way.
      EXPECT_GE(result.epochs, 1u);
      // The aggregate only contains collected samples; attempted covers
      // also the discarded overlap tail.
      EXPECT_GE(result.samples_attempted, result.aggregate.count());
    }
  });
}

TEST(GenericDriver, MaxEpochsStopsDivergentRules) {
  struct OneSampler {
    void sample(MomentFrame& frame) { frame.record(1); }
  };
  mpisim::RuntimeConfig config;
  config.num_ranks = 2;
  config.network = mpisim::NetworkModel::disabled();
  mpisim::Runtime runtime(config);
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    engine::EngineOptions options;
    options.epoch_base = 5;
    options.epoch_exponent = 0.0;
    options.max_epochs = 7;
    auto result = engine::run_epochs(
        world.get(), MomentFrame{}, [](std::uint64_t) { return OneSampler{}; },
        [](const MomentFrame&) { return false; },  // never satisfied
        options);
    EXPECT_EQ(result.epochs, 7u);
  });
}

double exact_mean_distance(const graph::Graph& graph) {
  graph::BfsWorkspace ws(graph.num_vertices());
  double total = 0.0;
  std::uint64_t pairs = 0;
  for (graph::Vertex s = 0; s < graph.num_vertices(); ++s) {
    graph::bfs(graph, s, ws);
    for (const graph::Vertex v : ws.queue()) {
      if (v == s) continue;
      total += ws.dist(v);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

TEST(MeanDistance, MatchesExactOnRandomGraph) {
  const auto graph =
      graph::largest_component(gen::erdos_renyi(300, 900, 77));
  const double exact = exact_mean_distance(graph);
  MeanDistanceParams params;
  params.epsilon = 0.05;
  params.seed = 3;
  const MeanDistanceResult result = mean_distance_mpi(graph, params, 4);
  EXPECT_NEAR(result.mean, exact, 3 * params.epsilon);
  EXPECT_LE(result.half_width, params.epsilon);
  EXPECT_GT(result.samples, 0u);
}

TEST(MeanDistance, MatchesExactOnHighDiameterGraph) {
  gen::RoadParams road_params;
  road_params.width = 40;
  road_params.height = 12;
  const auto graph = gen::road(road_params, 5);
  const double exact = exact_mean_distance(graph);
  MeanDistanceParams params;
  params.epsilon = 0.25;  // absolute hops; road means are ~15-20
  params.seed = 4;
  const MeanDistanceResult result = mean_distance_mpi(graph, params, 2);
  EXPECT_NEAR(result.mean, exact, 3 * params.epsilon);
}

TEST(MeanDistance, TighterEpsilonTakesMoreSamples) {
  const auto graph =
      graph::largest_component(gen::erdos_renyi(300, 900, 78));
  MeanDistanceParams loose;
  loose.epsilon = 0.2;
  MeanDistanceParams tight;
  tight.epsilon = 0.05;
  const auto a = mean_distance_mpi(graph, loose, 2);
  const auto b = mean_distance_mpi(graph, tight, 2);
  EXPECT_GT(b.samples, a.samples);
}

TEST(MeanDistance, CompleteGraphHasMeanOne) {
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;
  for (graph::Vertex u = 0; u < 12; ++u)
    for (graph::Vertex v = u + 1; v < 12; ++v) edges.emplace_back(u, v);
  const auto graph = graph::from_edges(12, edges);
  MeanDistanceParams params;
  params.epsilon = 0.01;
  const MeanDistanceResult result = mean_distance_mpi(graph, params, 2);
  EXPECT_DOUBLE_EQ(result.mean, 1.0);
  EXPECT_DOUBLE_EQ(result.stddev, 0.0);
  // Zero variance: the rule fires as soon as the R/n term is small.
  EXPECT_LT(result.samples, 100000u);
}

TEST(MeanDistance, WorksAcrossClusterShapes) {
  const auto graph =
      graph::largest_component(gen::erdos_renyi(200, 600, 79));
  const double exact = exact_mean_distance(graph);
  for (const int ranks : {1, 2, 4}) {
    MeanDistanceParams params;
    params.epsilon = 0.1;
    params.engine.threads_per_rank = ranks == 4 ? 2 : 1;
    params.seed = 10 + ranks;
    const MeanDistanceResult result =
        mean_distance_mpi(graph, params, ranks, ranks >= 2 ? 2 : 1);
    EXPECT_NEAR(result.mean, exact, 3 * params.epsilon) << ranks;
  }
}

}  // namespace
}  // namespace distbc::adaptive
