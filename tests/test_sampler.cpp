// Tests for the KADABRA path sampler: unbiasedness against exact
// betweenness, disconnected-pair handling, bookkeeping invariants, and
// interaction with state frames.
#include <gtest/gtest.h>

#include <cmath>

#include "bc/brandes.hpp"
#include "bc/sampler.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace distbc::bc {
namespace {

using graph::from_edges;
using graph::Graph;
using graph::Vertex;

TEST(PathSampler, TauAdvancesOncePerSample) {
  const Graph graph = from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  PathSampler sampler(graph, Rng(1));
  epoch::StateFrame frame(graph.num_vertices());
  for (int i = 0; i < 500; ++i) sampler.sample(frame);
  EXPECT_EQ(frame.tau(), 500u);
  EXPECT_EQ(sampler.samples_taken(), 500u);
  EXPECT_TRUE(frame.counts_consistent());
}

TEST(PathSampler, EstimatesAreUnbiasedOnPath) {
  // On a 4-path the interior vertices have b = 2*1*2/(4*3) = 1/3 and
  // b(1) = b(2); 40k samples pin the estimate to ~1% absolute.
  const Graph graph = from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  PathSampler sampler(graph, Rng(2));
  epoch::StateFrame frame(graph.num_vertices());
  constexpr std::uint64_t kSamples = 40000;
  for (std::uint64_t i = 0; i < kSamples; ++i) sampler.sample(frame);
  const double b1 = static_cast<double>(frame.count(1)) / kSamples;
  const double b2 = static_cast<double>(frame.count(2)) / kSamples;
  EXPECT_NEAR(b1, 1.0 / 3.0, 0.015);
  EXPECT_NEAR(b2, 1.0 / 3.0, 0.015);
  EXPECT_EQ(frame.count(0), 0u);
  EXPECT_EQ(frame.count(3), 0u);
}

TEST(PathSampler, EstimatesMatchBrandesOnRandomGraph) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(60, 160, 3));
  const BcResult exact = brandes(graph);
  PathSampler sampler(graph, Rng(4));
  epoch::StateFrame frame(graph.num_vertices());
  constexpr std::uint64_t kSamples = 60000;
  for (std::uint64_t i = 0; i < kSamples; ++i) sampler.sample(frame);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const double estimate =
        static_cast<double>(frame.count(v)) / kSamples;
    EXPECT_NEAR(estimate, exact.scores[v], 0.02) << "vertex " << v;
  }
}

TEST(PathSampler, DisconnectedPairsCountTowardTau) {
  // Two components: cross pairs are disconnected and contribute only tau.
  const Graph graph = from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  PathSampler sampler(graph, Rng(5));
  epoch::StateFrame frame(graph.num_vertices());
  constexpr std::uint64_t kSamples = 20000;
  for (std::uint64_t i = 0; i < kSamples; ++i) sampler.sample(frame);
  EXPECT_EQ(frame.tau(), kSamples);
  // Middle vertices: within a component, 1/3 of ordered pairs pass the
  // middle (2 of 6), and 6/30 of all pairs are intra-component per side:
  // b(1) = (2/30) * 1 = 1/15 on the 6-vertex normalization.
  const double b1 = static_cast<double>(frame.count(1)) / kSamples;
  EXPECT_NEAR(b1, 2.0 / 30.0, 0.01);
  // Endpoints never appear as interior.
  EXPECT_EQ(frame.count(0), 0u);
  EXPECT_EQ(frame.count(3), 0u);
}

TEST(PathSampler, TwoSamplersWithSameSeedAgree) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(80, 200, 6));
  PathSampler a(graph, Rng(7));
  PathSampler b(graph, Rng(7));
  epoch::StateFrame frame_a(graph.num_vertices());
  epoch::StateFrame frame_b(graph.num_vertices());
  for (int i = 0; i < 2000; ++i) {
    a.sample(frame_a);
    b.sample(frame_b);
  }
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    ASSERT_EQ(frame_a.count(v), frame_b.count(v));
}

TEST(PathSampler, SplitStreamsDecorrelate) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(80, 200, 8));
  PathSampler a(graph, Rng(9).split(0));
  PathSampler b(graph, Rng(9).split(1));
  epoch::StateFrame frame_a(graph.num_vertices());
  epoch::StateFrame frame_b(graph.num_vertices());
  for (int i = 0; i < 2000; ++i) {
    a.sample(frame_a);
    b.sample(frame_b);
  }
  int differing = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    differing += frame_a.count(v) != frame_b.count(v);
  EXPECT_GT(differing, 10);
}

TEST(PathSampler, InteriorMassMatchesPathLengths) {
  // Bookkeeping identity: sum of all counts equals the summed interior
  // lengths of the sampled paths, which is at most (VD - 2) * tau.
  const Graph graph = from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  PathSampler sampler(graph, Rng(10));
  epoch::StateFrame frame(graph.num_vertices());
  constexpr std::uint64_t kSamples = 5000;
  for (std::uint64_t i = 0; i < kSamples; ++i) sampler.sample(frame);
  std::uint64_t mass = 0;
  for (Vertex v = 0; v < 5; ++v) mass += frame.count(v);
  EXPECT_LE(mass, 3 * kSamples);  // diameter 4 -> at most 3 interior
  EXPECT_GT(mass, 0u);
}

TEST(PathSampler, WorksOnCompleteGraphs) {
  // Every pair is adjacent: all paths are direct edges, no interior
  // vertices ever recorded.
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < 8; ++u)
    for (Vertex v = u + 1; v < 8; ++v) edges.emplace_back(u, v);
  const Graph graph = from_edges(8, edges);
  PathSampler sampler(graph, Rng(11));
  epoch::StateFrame frame(graph.num_vertices());
  for (int i = 0; i < 1000; ++i) sampler.sample(frame);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(frame.count(v), 0u);
  EXPECT_EQ(frame.tau(), 1000u);
}

}  // namespace
}  // namespace distbc::bc
