// Tests for the pluggable frame-representation layer: SparseFrame
// semantics (touched-set tracking, O(nnz) clear/merge, overlapping
// deltas, tau-only frames), the wire-image codec (dense and sparse
// encodings, densify threshold, additive decode), and cross-representation
// equivalence against StateFrame under random record sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "epoch/epoch_manager.hpp"
#include "epoch/frame_codec.hpp"
#include "epoch/sparse_frame.hpp"
#include "epoch/state_frame.hpp"
#include "support/random.hpp"

namespace distbc::epoch {
namespace {

TEST(SparseFrame, RecordsTauAndCounts) {
  SparseFrame frame(5);
  const std::vector<std::uint32_t> path{1, 3};
  frame.record(path);
  frame.record_empty();
  EXPECT_EQ(frame.tau(), 2u);
  EXPECT_EQ(frame.count(1), 1u);
  EXPECT_EQ(frame.count(3), 1u);
  EXPECT_EQ(frame.count(0), 0u);
  EXPECT_EQ(frame.nonzero_count(), 2u);
  EXPECT_TRUE(frame.counts_consistent());
}

TEST(SparseFrame, ClearResetsOnlyTouchedSlotsButAll) {
  SparseFrame frame(8);
  frame.record(std::vector<std::uint32_t>{0, 4, 7});
  frame.clear();
  EXPECT_TRUE(frame.empty());
  EXPECT_EQ(frame.nonzero_count(), 0u);
  for (std::uint32_t v = 0; v < 8; ++v) EXPECT_EQ(frame.count(v), 0u);
  // Reusable after clear: touched bookkeeping starts fresh.
  frame.record(std::vector<std::uint32_t>{4});
  EXPECT_EQ(frame.count(4), 1u);
  EXPECT_EQ(frame.nonzero_count(), 1u);
}

TEST(SparseFrame, MergeOfOverlappingDeltasAddsExactly) {
  SparseFrame a(6);
  SparseFrame b(6);
  a.record(std::vector<std::uint32_t>{1, 2});
  b.record(std::vector<std::uint32_t>{2, 3});
  b.record(std::vector<std::uint32_t>{2});
  a.merge(b);
  EXPECT_EQ(a.tau(), 3u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.count(2), 3u);  // overlap: 1 from a + 2 from b
  EXPECT_EQ(a.count(3), 1u);
  EXPECT_EQ(a.nonzero_count(), 3u);
}

TEST(SparseFrame, MergeOfEmptySourceIsNoOp) {
  SparseFrame a(4);
  a.record(std::vector<std::uint32_t>{2});
  const SparseFrame idle(4);
  a.merge(idle);
  EXPECT_EQ(a.tau(), 1u);
  EXPECT_EQ(a.count(2), 1u);
}

TEST(SparseFrame, TauOnlyFrameEncodesOnePair) {
  SparseFrame frame(100);
  frame.record_empty();
  frame.record_empty();
  std::vector<std::uint64_t> image;
  EXPECT_EQ(frame.encode(image, FrameRep::kSparse), FrameRep::kSparse);
  // [tag, npairs=1, (index=100, tau=2)]
  ASSERT_EQ(image.size(), sparse_image_words(1));
  EXPECT_EQ(image[0], kSparseTag);
  EXPECT_EQ(image[1], 1u);
  EXPECT_EQ(image[2], 100u);
  EXPECT_EQ(image[3], 2u);

  SparseFrame decoded(100);
  decoded.decode_add(image);
  EXPECT_EQ(decoded.tau(), 2u);
  EXPECT_EQ(decoded.nonzero_count(), 0u);
}

TEST(SparseFrame, SparseImagePairsAreSortedByIndex) {
  SparseFrame frame(50);
  frame.record(std::vector<std::uint32_t>{40, 3, 17});
  std::vector<std::uint64_t> image;
  ASSERT_EQ(frame.encode(image, FrameRep::kSparse), FrameRep::kSparse);
  ASSERT_EQ(image[1], 4u);  // 3 vertices + tau pair
  std::uint64_t previous = 0;
  for (std::uint64_t p = 0; p < image[1]; ++p) {
    const std::uint64_t index = image[2 + 2 * p];
    if (p > 0) { EXPECT_GT(index, previous); }
    previous = index;
  }
  EXPECT_EQ(image[2 + 2 * 3], 50u);  // tau pair last (largest index)
}

TEST(SparseFrame, DensifyThresholdGovernsAutoEncoding) {
  // 4 of 8 slots touched: sparse needs 2 + 2*5 = 12 words vs dense 10.
  const std::vector<std::uint32_t> hits{0, 2, 4, 6};
  SparseFrame loose(8, /*densify_threshold=*/2.0);
  loose.record(hits);
  std::vector<std::uint64_t> image;
  EXPECT_EQ(loose.encode(image, FrameRep::kAuto), FrameRep::kSparse);

  SparseFrame strict(8, /*densify_threshold=*/1.0);
  strict.record(hits);
  image.clear();
  EXPECT_EQ(strict.encode(image, FrameRep::kAuto), FrameRep::kDense);
  EXPECT_EQ(image.size(), dense_image_words(9));

  // Forced sparse ignores the threshold (the fixed-sparse ablation arm);
  // forced dense ignores the touched set.
  image.clear();
  EXPECT_EQ(strict.encode(image, FrameRep::kSparse), FrameRep::kSparse);
  image.clear();
  EXPECT_EQ(loose.encode(image, FrameRep::kDense), FrameRep::kDense);
}

TEST(SparseFrame, EncodeDecodeRoundTripsBothRepresentations) {
  Rng rng(99);
  SparseFrame original(64);
  std::vector<std::uint32_t> path;
  for (int sample = 0; sample < 40; ++sample) {
    path.clear();
    const int internal = static_cast<int>(rng.next_bounded(5));
    for (int i = 0; i < internal; ++i)
      path.push_back(static_cast<std::uint32_t>(rng.next_bounded(64)));
    if (path.empty()) {
      original.record_empty();
    } else {
      original.record(path);
    }
  }
  for (const FrameRep rep : {FrameRep::kDense, FrameRep::kSparse}) {
    std::vector<std::uint64_t> image;
    original.encode(image, rep);
    SparseFrame decoded(64);
    decoded.decode_add(image);
    EXPECT_EQ(decoded.tau(), original.tau());
    for (std::uint32_t v = 0; v < 64; ++v)
      EXPECT_EQ(decoded.count(v), original.count(v)) << "rep " << static_cast<int>(rep);
    // Decoding is additive: a second pass doubles everything.
    decoded.decode_add(image);
    EXPECT_EQ(decoded.tau(), 2 * original.tau());
  }
}

TEST(SparseFrame, MatchesStateFrameUnderRandomRecording) {
  Rng rng(1234);
  StateFrame dense(32);
  SparseFrame sparse(32);
  std::vector<std::uint32_t> path;
  for (int sample = 0; sample < 200; ++sample) {
    path.clear();
    const int internal = static_cast<int>(rng.next_bounded(4));
    for (int i = 0; i < internal; ++i)
      path.push_back(static_cast<std::uint32_t>(rng.next_bounded(32)));
    if (path.empty()) {
      dense.record_empty();
      sparse.record_empty();
    } else {
      dense.record(path);
      sparse.record(path);
    }
  }
  EXPECT_EQ(sparse.tau(), dense.tau());
  EXPECT_EQ(sparse.count_sum(), dense.count_sum());
  for (std::uint32_t v = 0; v < 32; ++v)
    EXPECT_EQ(sparse.count(v), dense.count(v));

  // Cross-representation decode: a sparse image merges into a StateFrame.
  std::vector<std::uint64_t> image;
  sparse.encode(image, FrameRep::kSparse);
  StateFrame from_image(32);
  from_image.decode_add(image);
  for (std::uint32_t v = 0; v < 32; ++v)
    EXPECT_EQ(from_image.count(v), dense.count(v));
  EXPECT_EQ(from_image.tau(), dense.tau());
}

TEST(SparseFrame, AddDenseTracksTouchedSlots) {
  StateFrame dense(6);
  dense.record(std::vector<std::uint32_t>{1, 5});
  SparseFrame sparse(6);
  sparse.add_dense(dense.raw());
  EXPECT_EQ(sparse.nonzero_count(), 2u);
  EXPECT_EQ(sparse.tau(), 1u);
  sparse.clear();
  EXPECT_TRUE(sparse.empty());
  for (std::uint32_t v = 0; v < 6; ++v) EXPECT_EQ(sparse.count(v), 0u);
}

TEST(SparseFrame, WorksUnderEpochManager) {
  EpochManager<SparseFrame> manager(2, SparseFrame(16));
  manager.frame(0, 0).record(std::vector<std::uint32_t>{3});
  manager.frame(1, 0).record(std::vector<std::uint32_t>{3, 9});
  manager.force_transition(0);
  ASSERT_TRUE(manager.check_transition(1, 0));
  SparseFrame aggregate(16);
  manager.collect(0, aggregate);
  EXPECT_EQ(aggregate.tau(), 2u);
  EXPECT_EQ(aggregate.count(3), 2u);
  EXPECT_EQ(aggregate.count(9), 1u);
  EXPECT_TRUE(manager.frame(0, 0).empty());
  EXPECT_TRUE(manager.frame(1, 0).empty());
}

TEST(StateFrame, EncodePrefersSmallerImageUnderAuto) {
  StateFrame mostly_empty(100);
  mostly_empty.record(std::vector<std::uint32_t>{7});
  std::vector<std::uint64_t> image;
  EXPECT_EQ(mostly_empty.encode(image, FrameRep::kAuto), FrameRep::kSparse);
  EXPECT_EQ(image.size(), sparse_image_words(2));  // vertex 7 + tau

  StateFrame full(4);
  full.record(std::vector<std::uint32_t>{0, 1, 2, 3});
  image.clear();
  EXPECT_EQ(full.encode(image, FrameRep::kAuto), FrameRep::kDense);
}

// --- merge_images: the interior-hop combiner of tree-merge reductions -------

/// Decodes an image into a dense vector of `words` slots.
std::vector<std::uint64_t> decoded(std::span<const std::uint64_t> image,
                                   std::size_t words) {
  std::vector<std::uint64_t> dense(words, 0);
  decode_add_image(std::span<std::uint64_t>(dense), image);
  return dense;
}

TEST(MergeImages, SparseSparseMergeJoin) {
  // Disjoint and overlapping indices, ascending order preserved.
  std::vector<std::uint64_t> acc{kSparseTag, 2, 1, 10, 5, 20};
  const std::vector<std::uint64_t> in{kSparseTag, 3, 0, 1, 5, 2, 7, 3};
  merge_images(acc, in, /*dense_words=*/16, /*densify_threshold=*/1.0);
  const std::vector<std::uint64_t> expected{kSparseTag, 4, 0, 1,
                                            1,          10, 5, 22,
                                            7,          3};
  EXPECT_EQ(acc, expected);
}

TEST(MergeImages, EqualsDecodingBothInputs) {
  std::vector<std::uint64_t> acc{kSparseTag, 2, 3, 4, 9, 1};
  const std::vector<std::uint64_t> in{kSparseTag, 2, 3, 6, 12, 2};
  std::vector<std::uint64_t> want = decoded(acc, 16);
  const std::vector<std::uint64_t> other = decoded(in, 16);
  for (std::size_t i = 0; i < want.size(); ++i) want[i] += other[i];
  merge_images(acc, in, 16, 1.0);
  EXPECT_EQ(decoded(acc, 16), want);
}

TEST(MergeImages, DensifiesAtTheCrossover) {
  // 16-slot space: sparse pays while 2 + 2 * npairs < 1 + 16. Merging two
  // 4-pair images with disjoint indices gives 8 pairs -> 18 words >= 17,
  // so the result must densify (mid-tree densification).
  std::vector<std::uint64_t> acc{kSparseTag, 4, 0, 1, 2, 1, 4, 1, 6, 1};
  const std::vector<std::uint64_t> in{kSparseTag, 4, 1, 2, 3, 2, 5, 2, 7, 2};
  const std::vector<std::uint64_t> want = [&] {
    std::vector<std::uint64_t> dense = decoded(acc, 16);
    const std::vector<std::uint64_t> other = decoded(in, 16);
    for (std::size_t i = 0; i < dense.size(); ++i) dense[i] += other[i];
    return dense;
  }();
  merge_images(acc, in, 16, 1.0);
  ASSERT_EQ(image_rep(acc), FrameRep::kDense);
  EXPECT_EQ(decoded(acc, 16), want);

  // A lower threshold densifies earlier: a single-pair merge (4 image
  // words) stops paying under 0.2 x the 17-word dense image.
  std::vector<std::uint64_t> small{kSparseTag, 1, 0, 1};
  const std::vector<std::uint64_t> same = small;
  merge_images(small, same, 16, 0.2);
  EXPECT_EQ(image_rep(small), FrameRep::kDense);
  EXPECT_EQ(decoded(small, 16)[0], 2u);
}

TEST(MergeImages, DenseOperandsDensifyTheResult) {
  // dense += sparse.
  std::vector<std::uint64_t> acc{kDenseTag, 1, 2, 3, 0};
  merge_images(acc, std::vector<std::uint64_t>{kSparseTag, 1, 3, 5}, 4, 1.0);
  EXPECT_EQ(acc, (std::vector<std::uint64_t>{kDenseTag, 1, 2, 3, 5}));
  // sparse += dense: the accumulator densifies.
  std::vector<std::uint64_t> sparse{kSparseTag, 1, 0, 7};
  merge_images(sparse, std::vector<std::uint64_t>{kDenseTag, 1, 1, 1, 1}, 4,
               1.0);
  EXPECT_EQ(sparse, (std::vector<std::uint64_t>{kDenseTag, 8, 1, 1, 1}));
  // dense += dense.
  std::vector<std::uint64_t> both{kDenseTag, 1, 1, 1, 1};
  merge_images(both, std::vector<std::uint64_t>{kDenseTag, 1, 0, 0, 2}, 4,
               1.0);
  EXPECT_EQ(both, (std::vector<std::uint64_t>{kDenseTag, 2, 1, 1, 3}));
}

TEST(FrameRepNames, RoundTrip) {
  for (const FrameRep rep :
       {FrameRep::kDense, FrameRep::kSparse, FrameRep::kAuto}) {
    const auto back = frame_rep_from_name(frame_rep_name(rep));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, rep);
  }
  EXPECT_FALSE(frame_rep_from_name("nonsense").has_value());
}

}  // namespace
}  // namespace distbc::epoch
