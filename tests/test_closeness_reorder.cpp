// Tests for the adaptive closeness estimator and the locality-reordering
// utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "adaptive/closeness.hpp"
#include "bc/kadabra.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/reorder.hpp"

namespace distbc {
namespace {

using graph::from_edges;
using graph::Graph;
using graph::Vertex;

/// Exact normalized harmonic closeness by all-pairs BFS.
std::vector<double> exact_harmonic_closeness(const Graph& graph) {
  const Vertex n = graph.num_vertices();
  std::vector<double> scores(n, 0.0);
  graph::BfsWorkspace ws(n);
  for (Vertex s = 0; s < n; ++s) {
    graph::bfs(graph, s, ws);
    for (const Vertex v : ws.queue()) {
      if (v == s) continue;
      scores[v] += 1.0 / ws.dist(v);
    }
  }
  for (double& score : scores) score /= n - 1.0;
  return scores;
}

TEST(ClosenessFrame, CreditsAndMoments) {
  adaptive::ClosenessFrame frame(3);
  frame.add_credit(1, 0.5);
  frame.add_credit(1, 0.25);
  frame.finish_source();
  frame.finish_source();
  EXPECT_EQ(frame.sources(), 2u);
  EXPECT_NEAR(frame.credit_sum(1), 0.75, 1e-5);
  EXPECT_NEAR(frame.credit_sq_sum(1), 0.25 + 0.0625, 1e-5);
  // E[x^2] - E[x]^2 = 0.3125/2 - 0.375^2 = 0.015625.
  EXPECT_NEAR(frame.variance(1), 0.3125 / 2.0 - 0.375 * 0.375, 1e-5);
  EXPECT_NEAR(frame.credit_sum(0), 0.0, 1e-9);
}

TEST(ClosenessFrame, MergeMatchesSingleFrame) {
  adaptive::ClosenessFrame a(2);
  adaptive::ClosenessFrame b(2);
  a.add_credit(0, 1.0);
  a.finish_source();
  b.add_credit(0, 0.5);
  b.finish_source();
  a.merge(b);
  EXPECT_EQ(a.sources(), 2u);
  EXPECT_NEAR(a.credit_sum(0), 1.5, 1e-5);
}

TEST(Closeness, SampleBoundShrinksWithEpsilon) {
  EXPECT_GT(adaptive::closeness_sample_bound(1000, 0.01, 0.1),
            adaptive::closeness_sample_bound(1000, 0.1, 0.1));
  EXPECT_GT(adaptive::closeness_sample_bound(1u << 20, 0.05, 0.1),
            adaptive::closeness_sample_bound(16, 0.05, 0.1));
}

TEST(Closeness, MatchesExactOnRandomGraph) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(250, 700, 404));
  const auto exact = exact_harmonic_closeness(graph);
  adaptive::ClosenessParams params;
  params.epsilon = 0.05;
  params.seed = 8;
  const auto result = adaptive::closeness_mpi(graph, params, 4);
  ASSERT_EQ(result.scores.size(), exact.size());
  double worst = 0.0;
  for (std::size_t v = 0; v < exact.size(); ++v)
    worst = std::max(worst, std::abs(result.scores[v] - exact[v]));
  EXPECT_LE(worst, params.epsilon);
  EXPECT_GT(result.samples, 0u);
}

TEST(Closeness, StarCenterWins) {
  const Graph graph = from_edges(8, {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                     {0, 5}, {0, 6}, {0, 7}});
  adaptive::ClosenessParams params;
  params.epsilon = 0.05;
  const auto result = adaptive::closeness_mpi(graph, params, 2);
  EXPECT_EQ(result.top_k(1)[0], 0u);
  // Center's harmonic closeness is exactly 1 (all others at distance 1).
  EXPECT_NEAR(result.scores[0], 1.0, 0.05);
}

TEST(Closeness, AdaptiveStopBeatsWorstCaseOnLowVarianceGraphs) {
  // On a complete graph every credit is exactly 1: zero variance, so the
  // Bernstein rule fires orders of magnitude before the Hoeffding bound.
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < 20; ++u)
    for (Vertex v = u + 1; v < 20; ++v) edges.emplace_back(u, v);
  const Graph graph = from_edges(20, edges);
  adaptive::ClosenessParams params;
  params.epsilon = 0.02;
  const auto result = adaptive::closeness_mpi(graph, params, 2);
  EXPECT_LT(result.samples,
            adaptive::closeness_sample_bound(20, params.epsilon,
                                             params.delta));
  for (const double score : result.scores) EXPECT_NEAR(score, 1.0, 0.02);
}

TEST(Reorder, DegreeSortIsIsomorphicAndSorted) {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 6.0;
  const Graph graph = graph::largest_component(gen::rmat(params, 71));
  const graph::ReorderedGraph reordered = graph::sort_by_degree(graph);

  EXPECT_EQ(reordered.graph.num_vertices(), graph.num_vertices());
  EXPECT_EQ(reordered.graph.num_edges(), graph.num_edges());
  // Degrees descend in the new labeling.
  for (Vertex v = 1; v < reordered.graph.num_vertices(); ++v)
    EXPECT_LE(reordered.graph.degree(v), reordered.graph.degree(v - 1));
  // Every original edge maps to a new edge.
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    for (const Vertex v : graph.neighbors(u)) {
      EXPECT_TRUE(reordered.graph.has_edge(reordered.old_to_new[u],
                                           reordered.old_to_new[v]));
    }
  }
  // The two mappings are inverse permutations.
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    EXPECT_EQ(reordered.new_to_old[reordered.old_to_new[v]], v);
}

TEST(Reorder, BfsOrderPacksNeighborhoods) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(300, 900, 72));
  const graph::ReorderedGraph reordered = graph::sort_by_bfs(graph);
  EXPECT_EQ(reordered.graph.num_edges(), graph.num_edges());
  // Vertex 0 is the hub; its neighbors got small ids (next BFS layer).
  std::uint64_t sum_of_neighbor_ids = 0;
  for (const Vertex v : reordered.graph.neighbors(0))
    sum_of_neighbor_ids += v;
  const double average_id =
      static_cast<double>(sum_of_neighbor_ids) /
      static_cast<double>(reordered.graph.degree(0));
  EXPECT_LT(average_id, graph.num_vertices() / 2.0);
}

TEST(Reorder, BfsOrderHandlesDisconnectedGraphs) {
  const Graph graph = from_edges(5, {{0, 1}, {1, 2}});  // 3 and 4 isolated
  const graph::ReorderedGraph reordered = graph::sort_by_bfs(graph);
  EXPECT_EQ(reordered.graph.num_vertices(), 5u);
  EXPECT_EQ(reordered.graph.num_edges(), 2u);
}

TEST(Reorder, ScoresTranslateBack) {
  const Graph graph = from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const graph::ReorderedGraph reordered = graph::sort_by_degree(graph);
  std::vector<double> new_scores(4);
  for (Vertex v = 0; v < 4; ++v) new_scores[v] = v * 10.0;
  const auto original = reordered.scores_to_original(new_scores);
  for (Vertex v = 0; v < 4; ++v)
    EXPECT_DOUBLE_EQ(original[v],
                     reordered.old_to_new[v] * 10.0);
}

TEST(Reorder, BetweennessInvariantUnderRelabeling) {
  // Centrality is a graph property: computing on the reordered graph and
  // mapping back must match computing on the original.
  gen::RmatParams gen_params;
  gen_params.scale = 8;
  gen_params.edge_factor = 6.0;
  const Graph graph = graph::largest_component(gen::rmat(gen_params, 73));
  const graph::ReorderedGraph reordered = graph::sort_by_degree(graph);

  bc::KadabraParams params;
  params.epsilon = 0.1;
  params.seed = 21;
  const bc::BcResult direct = bc::kadabra_sequential(graph, params);
  const bc::BcResult relabeled =
      bc::kadabra_sequential(reordered.graph, params);
  const auto mapped = reordered.scores_to_original(relabeled.scores);
  for (std::size_t v = 0; v < mapped.size(); ++v)
    EXPECT_NEAR(mapped[v], direct.scores[v], 2 * params.epsilon);
}

}  // namespace
}  // namespace distbc
