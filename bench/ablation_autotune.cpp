// Ablation for the tune/ subsystem: on each cluster shape, capture a
// tuning profile with the communication microbenchmark, then race the
// auto-tuned engine configuration against every fixed §IV-F aggregation
// strategy. The tuned configuration must never be slower than the worst
// fixed strategy, and on oversubscribed shapes it must select
// Ibarrier + Reduce - the paper's §IV-F conclusion, now reached from
// measurements instead of hand ablation.
#include "bench_common.hpp"
#include "tune/tuner.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("instance", "proxy instance to run");
  config.options.describe("cores",
                          "assumed physical cores for the oversubscription "
                          "factor (0 = hardware)");
  config.options.describe("rounds", "microbench measurement rounds");
  config.options.describe("repeats",
                          "timed runs per configuration (min is kept)");
  config.finish("Autotuner vs fixed SIV-F aggregation strategies.");
  bench::print_preamble("Ablation - autotuned engine knobs",
                        "paper §IV-D/E/F, decided by tune/ measurements",
                        config);
  bench::JsonReport json("ablation_autotune", config);

  const auto& spec = gen::instance_by_name(
      config.options.get_string("instance", "twitter-proxy"));
  const auto graph = spec.build(config.scale, config.seed);
  std::printf("instance=%s |V|=%u\n\n", spec.name.c_str(),
              graph.num_vertices());
  json.param("instance", spec.name);

  struct Shape {
    int ranks;
    int threads;
  };
  const Shape shapes[] = {{2, 2}, {4, 2}, {8, 1}};
  struct Strategy {
    const char* name;
    bc::Aggregation aggregation;
  };
  const Strategy strategies[] = {
      {"ibarrier+reduce", bc::Aggregation::kIbarrierReduce},
      {"ireduce", bc::Aggregation::kIreduce},
      {"blocking", bc::Aggregation::kBlocking}};

  const mpisim::NetworkModel network = bench::bench_network(config, 500.0);
  const auto assumed_cores =
      static_cast<int>(config.options.get_u64("cores", 0));
  const auto rounds = static_cast<int>(config.options.get_u64("rounds", 7));
  const auto repeats =
      std::max<std::uint64_t>(1, config.options.get_u64("repeats", 3));

  // Simulated timings on a timeshared host carry scheduler noise; the min
  // over a few runs is the standard estimator for them.
  const auto timed_min = [&](const bc::KadabraOptions& options, int ranks) {
    bc::BcResult best;
    for (std::uint64_t i = 0; i < repeats; ++i) {
      bc::BcResult result = bc::kadabra_mpi(graph, options, ranks, 1, network);
      if (i == 0 || result.adaptive_seconds < best.adaptive_seconds)
        best = std::move(result);
    }
    return best;
  };

  TablePrinter table({"shape", "oversub", "config", "ADS (s)", "epochs",
                      "n0 base"});
  bool never_slower = true;
  bool oversub_picks_ibarrier = true;
  for (const Shape& shape : shapes) {
    // Measure the substrate, fit the cost model, decide the knobs.
    tune::MicrobenchConfig micro;
    micro.num_ranks = shape.ranks;
    micro.threads_per_rank = shape.threads;
    micro.assumed_cores = assumed_cores;
    micro.measure_rounds = rounds;
    micro.network = network;
    // Bracket the workload's actual frame size: extrapolating an
    // alpha-beta line far past the measured sizes amplifies fit noise.
    const std::size_t frame_words = graph.num_vertices() + 1;
    micro.message_words = {std::max<std::size_t>(64, frame_words / 4),
                           2 * frame_words};
    const auto profile =
        std::make_shared<tune::TuningProfile>(tune::capture_profile(micro));
    const bool oversubscribed = profile->oversubscription > 1.0;
    const std::string shape_name = "P=" + std::to_string(shape.ranks) +
                                   ",T=" + std::to_string(shape.threads);

    double worst_fixed = 0.0;
    for (const Strategy& strategy : strategies) {
      bc::KadabraOptions options = bench::bench_mpi_options(spec, config);
      options.engine.threads_per_rank = shape.threads;
      options.engine.aggregation = strategy.aggregation;
      options.engine.epoch_base = config.options.get_u64("n0base", 20);
      const bc::BcResult result = timed_min(options, shape.ranks);
      worst_fixed = std::max(worst_fixed, result.adaptive_seconds);
      table.add_row(
          {shape_name, TablePrinter::fmt(profile->oversubscription, 1),
           strategy.name, TablePrinter::fmt(result.adaptive_seconds, 3),
           TablePrinter::fmt_int(static_cast<long long>(result.epochs)),
           TablePrinter::fmt_int(
               static_cast<long long>(result.engine_used.epoch_base))});
      json.begin_row();
      json.field("shape", shape_name);
      json.field("config", strategy.name);
      json.field("adaptive_seconds", result.adaptive_seconds);
      json.field("epochs", static_cast<double>(result.epochs));
    }

    bc::KadabraOptions tuned = bench::bench_mpi_options(spec, config);
    tuned.auto_tune = profile;
    const bc::BcResult result = timed_min(tuned, shape.ranks);
    const char* chosen =
        engine::aggregation_name(result.engine_used.aggregation);
    table.add_row(
        {shape_name, TablePrinter::fmt(profile->oversubscription, 1),
         std::string("AUTO -> ") + chosen,
         TablePrinter::fmt(result.adaptive_seconds, 3),
         TablePrinter::fmt_int(static_cast<long long>(result.epochs)),
         TablePrinter::fmt_int(
             static_cast<long long>(result.engine_used.epoch_base))});
    json.begin_row();
    json.field("shape", shape_name);
    json.field("config", std::string("auto:") + chosen);
    json.field("adaptive_seconds", result.adaptive_seconds);
    json.field("epochs", static_cast<double>(result.epochs));
    json.field("oversubscription", profile->oversubscription);

    // Acceptance: tuned never slower than the worst fixed strategy (15%
    // timing-noise allowance), Ibarrier+Reduce wherever oversubscribed.
    if (result.adaptive_seconds > worst_fixed * 1.15) never_slower = false;
    if (oversubscribed &&
        result.engine_used.aggregation != bc::Aggregation::kIbarrierReduce)
      oversub_picks_ibarrier = false;
  }
  table.print();

  std::printf("\ncheck: tuned never slower than worst fixed strategy: %s\n",
              never_slower ? "PASS" : "FAIL");
  std::printf("check: oversubscribed shapes select ibarrier+reduce: %s\n",
              oversub_picks_ibarrier ? "PASS" : "FAIL");
  json.summary("never_slower", never_slower ? 1.0 : 0.0);
  json.summary("oversub_picks_ibarrier", oversub_picks_ibarrier ? 1.0 : 0.0);
  json.write();
  return never_slower && oversub_picks_ibarrier ? 0 : 1;
}
