// Shared plumbing for the paper-reproduction benches.
//
// Every bench accepts key=value arguments:
//   scale=0.25       instance size relative to the default proxy size
//   seed=42          generator seed
//   ranks=...        override the rank sweep (single value)
//   quick=1          use the 3-instance quick suite instead of all 10
//   --json [out=f]   also emit one machine-readable JSON object per run
// and prints rows shaped like the paper's tables/figures. Benches register
// their extra options and call config.finish() so --help lists everything
// and typos fail loudly (support/options.hpp).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bc/kadabra.hpp"
#include "gen/instances.hpp"
#include "graph/graph.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace distbc::bench {

struct BenchConfig {
  double scale = 0.25;
  std::uint64_t seed = 42;
  bool quick = false;
  Options options;

  BenchConfig(int argc, char** argv) : options(argc, argv) {
    scale = options.get_double("scale", scale,
                               "instance size relative to the proxy default");
    seed = options.get_u64("seed", seed, "generator seed");
    quick = options.get_bool("quick", quick,
                             "3-instance quick suite instead of all 10");
    options.describe("ranks", "override the rank sweep (single value)");
    options.describe("latency_us", "inter-node latency override (us)");
    options.describe("dedicated",
                     "model one dedicated core per rank (default 1)");
    options.describe("n0base", "epoch-length base override (SIV-D rule)");
    options.describe("json",
                     "emit one machine-readable JSON object per run");
    options.describe("out", "write the JSON object to this file");
  }

  /// Call after main registered its extra options: serves --help and
  /// rejects unknown keys.
  void finish(const char* summary = nullptr) const { options.finish(summary); }

  [[nodiscard]] const std::vector<gen::InstanceSpec>& suite() const {
    return quick ? gen::quick_suite() : gen::instance_suite();
  }
};

/// The rank counts of the paper's scaling experiments ("# compute nodes").
inline std::vector<int> rank_sweep(const BenchConfig& config) {
  if (config.options.has("ranks"))
    return {static_cast<int>(config.options.get_u64("ranks", 16))};
  return {1, 2, 4, 8, 16};
}

inline double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double value : values) log_sum += std::log(value);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// Interconnect model used by all benches: OmniPath-flavored defaults,
/// with the inter-node latency overridable (latency_us=...). Benches whose
/// effect *is* the aggregation latency (e.g. the §IV-F strategy ablation)
/// pass a slower default so the effect stays measurable when the simulated
/// ranks timeshare few physical cores.
inline mpisim::NetworkModel bench_network(const BenchConfig& config,
                                          double default_latency_us = 2.0) {
  mpisim::NetworkModel network;
  network.remote_latency_s =
      config.options.get_double("latency_us", default_latency_us) * 1e-6;
  // Benches model the paper's cluster: one dedicated core per rank, so a
  // rank blocked in a collective produces nothing (see NetworkModel).
  network.dedicated_cores = config.options.get_bool("dedicated", true);
  return network;
}

/// KADABRA parameters for a proxy instance at bench scale.
inline bc::KadabraParams bench_params(const gen::InstanceSpec& spec,
                                      std::uint64_t seed) {
  bc::KadabraParams params;
  params.epsilon = spec.bench_epsilon;
  params.delta = 0.1;
  params.seed = seed;
  return params;
}

/// Epoch-length base for benches. The paper's base of 1000 is tuned for
/// eps = 0.001 runs with millions of samples; the scaled proxies stop after
/// thousands, so the per-epoch budget scales down accordingly (same rule,
/// smaller constant; override with n0base=...).
inline std::uint64_t bench_epoch_base(const BenchConfig& config) {
  return config.options.get_u64("n0base", 50);
}

inline bc::KadabraOptions bench_mpi_options(const gen::InstanceSpec& spec,
                                               const BenchConfig& config) {
  bc::KadabraOptions options;
  options.params = bench_params(spec, config.seed);
  options.engine.epoch_base = bench_epoch_base(config);
  return options;
}

inline bc::KadabraOptions bench_shm_options(const gen::InstanceSpec& spec,
                                               const BenchConfig& config) {
  bc::KadabraOptions options;
  options.params = bench_params(spec, config.seed);
  options.engine.threads_per_rank = 1;
  options.engine.epoch_base = bench_epoch_base(config);
  return options;
}

/// Header block all benches print, so bench_output.txt is self-describing.
inline void print_preamble(const char* experiment, const char* paper_ref,
                           const BenchConfig& config) {
  std::printf("=== %s ===\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale=%.3g seed=%llu suite=%s\n\n", config.scale,
              static_cast<unsigned long long>(config.seed),
              config.quick ? "quick" : "paper-proxies");
}

// --- Machine-readable output (--json) ---------------------------------------

/// Collects one JSON object per bench run - name, parameters, result rows,
/// summary medians - and writes it on write() (to `out=` if given, else as
/// the last stdout line) when `--json` was passed. Values are stored as
/// pre-encoded JSON tokens; rows are flat objects.
class JsonReport {
 public:
  JsonReport(std::string bench_name, const BenchConfig& config)
      : name_(std::move(bench_name)),
        enabled_(config.options.get_bool("json", false)),
        out_path_(config.options.get_string("out", "")) {
    param("scale", config.scale);
    param("seed", static_cast<double>(config.seed));
    param("suite", config.quick ? "quick" : "paper-proxies");
  }

  [[nodiscard]] bool enabled() const { return enabled_; }

  void param(const std::string& key, double value) {
    params_.emplace_back(key, number(value));
  }
  void param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, quote(value));
  }

  /// Starts a new result row; fill it with field().
  void begin_row() { rows_.emplace_back(); }
  void field(const std::string& key, double value) {
    rows_.back().emplace_back(key, number(value));
  }
  void field(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, quote(value));
  }

  void summary(const std::string& key, double value) {
    summary_.emplace_back(key, number(value));
  }
  void summary(const std::string& key, const std::string& value) {
    summary_.emplace_back(key, quote(value));
  }

  /// Emits the object; no-op without --json.
  void write() const {
    if (!enabled_) return;
    std::string json = "{\"bench\":" + quote(name_);
    json += ",\"params\":" + object(params_);
    json += ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != 0) json += ',';
      json += object(rows_[i]);
    }
    json += "]";
    if (!summary_.empty()) json += ",\"summary\":" + object(summary_);
    json += "}\n";
    if (out_path_.empty()) {
      std::fputs(json.c_str(), stdout);
      return;
    }
    std::FILE* file = std::fopen(out_path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path_.c_str());
      return;
    }
    std::fputs(json.c_str(), file);
    std::fclose(file);
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& text) {
    std::string quoted = "\"";
    for (const char c : text) {
      if (c == '"' || c == '\\') quoted += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) quoted += c;
    }
    quoted += '"';
    return quoted;
  }
  static std::string number(double value) {
    if (!std::isfinite(value)) return "null";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
  }
  static std::string object(const Fields& fields) {
    std::string json = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) json += ',';
      json += quote(fields[i].first) + ":" + fields[i].second;
    }
    json += "}";
    return json;
  }

  std::string name_;
  bool enabled_ = false;
  std::string out_path_;
  Fields params_;
  std::vector<Fields> rows_;
  Fields summary_;
};

/// Adds the per-collective bytes-moved breakdown (comm::CommVolume) to
/// the current JSON row - Table II-style communication-volume reporting
/// for any bench that runs MPI configurations.
inline void add_comm_volume_fields(JsonReport& json,
                                   const mpisim::CommVolume& volume) {
  json.field("substrate", std::string(volume.substrate));
  json.field("reduce_bytes", static_cast<double>(volume.reduce_bytes));
  json.field("reduce_merge_bytes",
             static_cast<double>(volume.reduce_merge_bytes));
  json.field("gatherv_bytes", static_cast<double>(volume.gatherv_bytes));
  json.field("bcast_bytes", static_cast<double>(volume.bcast_bytes));
  json.field("p2p_bytes", static_cast<double>(volume.p2p_bytes));
  json.field("root_ingest_bytes",
             static_cast<double>(volume.root_ingest_bytes));
  json.field("aggregation_bytes",
             static_cast<double>(volume.aggregation_bytes()));
  json.field("total_bytes", static_cast<double>(volume.total()));
  // Analytic completion-deadline charges: a pure function of payload and
  // topology, so deterministic runs report them machine-independently.
  json.field("modeled_s", volume.modeled_seconds());
  json.field("overlapped_combine_s",
             static_cast<double>(volume.overlapped_combine_ns) * 1e-9);
}

}  // namespace distbc::bench
