// Shared plumbing for the paper-reproduction benches.
//
// Every bench accepts key=value arguments:
//   scale=0.25       instance size relative to the default proxy size
//   seed=42          generator seed
//   ranks=...        override the rank sweep (single value)
//   quick=1          use the 3-instance quick suite instead of all 10
// and prints rows shaped like the paper's tables/figures.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bc/kadabra.hpp"
#include "gen/instances.hpp"
#include "graph/graph.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace distbc::bench {

struct BenchConfig {
  double scale = 0.25;
  std::uint64_t seed = 42;
  bool quick = false;
  Options options;

  BenchConfig(int argc, char** argv) : options(argc, argv) {
    scale = options.get_double("scale", scale);
    seed = options.get_u64("seed", seed);
    quick = options.get_bool("quick", quick);
  }

  [[nodiscard]] const std::vector<gen::InstanceSpec>& suite() const {
    return quick ? gen::quick_suite() : gen::instance_suite();
  }
};

/// The rank counts of the paper's scaling experiments ("# compute nodes").
inline std::vector<int> rank_sweep(const BenchConfig& config) {
  if (config.options.has("ranks"))
    return {static_cast<int>(config.options.get_u64("ranks", 16))};
  return {1, 2, 4, 8, 16};
}

inline double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double value : values) log_sum += std::log(value);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// Interconnect model used by all benches: OmniPath-flavored defaults,
/// with the inter-node latency overridable (latency_us=...). Benches whose
/// effect *is* the aggregation latency (e.g. the §IV-F strategy ablation)
/// pass a slower default so the effect stays measurable when the simulated
/// ranks timeshare few physical cores.
inline mpisim::NetworkModel bench_network(const BenchConfig& config,
                                          double default_latency_us = 2.0) {
  mpisim::NetworkModel network;
  network.remote_latency_s =
      config.options.get_double("latency_us", default_latency_us) * 1e-6;
  // Benches model the paper's cluster: one dedicated core per rank, so a
  // rank blocked in a collective produces nothing (see NetworkModel).
  network.dedicated_cores = config.options.get_bool("dedicated", true);
  return network;
}

/// KADABRA parameters for a proxy instance at bench scale.
inline bc::KadabraParams bench_params(const gen::InstanceSpec& spec,
                                      std::uint64_t seed) {
  bc::KadabraParams params;
  params.epsilon = spec.bench_epsilon;
  params.delta = 0.1;
  params.seed = seed;
  return params;
}

/// Epoch-length base for benches. The paper's base of 1000 is tuned for
/// eps = 0.001 runs with millions of samples; the scaled proxies stop after
/// thousands, so the per-epoch budget scales down accordingly (same rule,
/// smaller constant; override with n0base=...).
inline std::uint64_t bench_epoch_base(const BenchConfig& config) {
  return config.options.get_u64("n0base", 50);
}

inline bc::KadabraOptions bench_mpi_options(const gen::InstanceSpec& spec,
                                               const BenchConfig& config) {
  bc::KadabraOptions options;
  options.params = bench_params(spec, config.seed);
  options.engine.epoch_base = bench_epoch_base(config);
  return options;
}

inline bc::KadabraOptions bench_shm_options(const gen::InstanceSpec& spec,
                                               const BenchConfig& config) {
  bc::KadabraOptions options;
  options.params = bench_params(spec, config.seed);
  options.engine.threads_per_rank = 1;
  options.engine.epoch_base = bench_epoch_base(config);
  return options;
}

/// Header block all benches print, so bench_output.txt is self-describing.
inline void print_preamble(const char* experiment, const char* paper_ref,
                           const BenchConfig& config) {
  std::printf("=== %s ===\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale=%.3g seed=%llu suite=%s\n\n", config.scale,
              static_cast<unsigned long long>(config.seed),
              config.quick ? "quick" : "paper-proxies");
}

}  // namespace distbc::bench
