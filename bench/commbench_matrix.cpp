// CommBench-style substrate x pattern x payload matrix over the pluggable
// comm::Substrate API: every backend (mpisim MPI-flavored, ncclsim
// NCCL-flavored) runs the same five collective patterns - dense reduce,
// sparse tree merge, allreduce, gatherv, bcast - at a sweep of payload
// sizes on one fixed cluster shape, and reports the bytes moved plus the
// interconnect model's analytic completion charge (modeled_s) per cell.
// The byte counters are substrate-invariant (the API contract: a backend
// changes the clock, never the traffic), while modeled_s is where the
// backends diverge - ncclsim pays a kernel-launch latency and prices
// all-reduces as a flat ring, mpisim as a butterfly. Acceptance:
//   * every cell's collective is semantically correct (sums verified),
//   * byte counters identical across substrates for every pattern cell,
//   * the ncclsim allreduce cell reproduces the ring closed form
//     launch + 2(P-1) alpha + (2(P-1)/P) B / beta exactly (the charge is
//     a single allreduce_cost call; the bench recomputes it from the
//     model parameters at 1e-6 relative).
// The --json object (BENCH_comm_matrix.json in CI) carries one summary
// anchor per cell: {substrate}_{pattern}_w{words}_modeled_s gated at the
// tight modeled tolerance, plus the cell's total bytes gated exactly.
#include <cmath>
#include <cstdint>
#include <iterator>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/substrate.hpp"
#include "epoch/frame_codec.hpp"
#include "mpisim/runtime.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("rpn", "simulated ranks per node");
  config.finish("Substrate x pattern x payload collective matrix.");
  bench::print_preamble(
      "CommBench matrix - substrate x pattern x payload",
      "pluggable comm substrates; NCCL ring economics vs MPI butterfly",
      config);
  bench::JsonReport json("commbench_matrix", config);

  const int ranks =
      static_cast<int>(config.options.get_u64("ranks", 8));
  const int ranks_per_node =
      static_cast<int>(config.options.get_u64("rpn", 4));
  const comm::NetworkModel base = bench::bench_network(config);
  json.param("ranks", static_cast<double>(ranks));
  json.param("ranks_per_node", static_cast<double>(ranks_per_node));

  const comm::SubstrateKind kinds[] = {comm::SubstrateKind::kMpisim,
                                       comm::SubstrateKind::kNcclsim};
  const char* patterns[] = {"reduce", "tree_merge", "allreduce", "gatherv",
                            "bcast"};
  const std::size_t payload_words[] = {512, 8192, 131072};

  // One cell: a fresh runtime on the substrate's network economics, one
  // collective, the stamped volume snapshot read at world rank 0 (blocking
  // collectives return only after every contribution is charged, so the
  // root-side read races with nothing).
  struct Cell {
    comm::CommVolume volume;
    bool ok = true;
  };
  const auto run_cell = [&](comm::SubstrateKind kind,
                            const std::string& pattern,
                            std::size_t words) {
    mpisim::RuntimeConfig runtime_config;
    runtime_config.num_ranks = ranks;
    runtime_config.ranks_per_node = ranks_per_node;
    runtime_config.network = comm::network_model_for(kind, base);
    mpisim::Runtime runtime(runtime_config);

    Cell cell;
    std::mutex mu;
    // Tree-merge geometry: rank r contributes `words` unit pairs at
    // indices [r * words/2, r * words/2 + words) - 50% overlap with the
    // neighboring rank, so interior combines genuinely shrink images.
    const std::size_t stride = words / 2;
    const std::size_t dense_words =
        stride * static_cast<std::size_t>(ranks) + words;
    runtime.run([&](auto& rank_comm) {
      const auto world = comm::make_substrate(kind, rank_comm);
      const auto rank = static_cast<std::uint64_t>(world->rank());
      bool rank_ok = true;
      if (pattern == "reduce" || pattern == "allreduce") {
        const std::vector<std::uint64_t> send(words, rank + 1);
        std::vector<std::uint64_t> recv(words, 0);
        if (pattern == "reduce") {
          world->reduce(std::span<const std::uint64_t>(send),
                        std::span<std::uint64_t>(recv), 0);
        } else {
          world->allreduce(std::span<const std::uint64_t>(send),
                           std::span<std::uint64_t>(recv));
        }
        // Sum of (r + 1) over all ranks; only the root holds it under
        // the rooted reduce.
        const std::uint64_t expect =
            static_cast<std::uint64_t>(ranks) *
            static_cast<std::uint64_t>(ranks + 1) / 2;
        if (pattern == "allreduce" || world->rank() == 0)
          for (const std::uint64_t value : recv)
            if (value != expect) rank_ok = false;
      } else if (pattern == "tree_merge") {
        std::vector<std::uint64_t> image = {epoch::kSparseTag,
                                            static_cast<std::uint64_t>(words)};
        for (std::size_t i = 0; i < words; ++i) {
          image.push_back(static_cast<std::uint64_t>(rank * stride + i));
          image.push_back(1);
        }
        std::vector<std::uint64_t> dense(dense_words, 0);
        world->reduce_merge_tree(
            std::span<const std::uint64_t>(image),
            [&](std::vector<std::uint64_t>& acc,
                std::span<const std::uint64_t> in) {
              epoch::merge_images(acc, in, dense_words,
                                  /*densify_threshold=*/1.0);
            },
            [&](int, std::span<const std::uint64_t> in) {
              epoch::decode_add_image(std::span<std::uint64_t>(dense), in);
            },
            /*root=*/0, /*radix=*/2);
        if (world->rank() == 0) {
          std::uint64_t total = 0;
          for (const std::uint64_t value : dense) total += value;
          if (total != static_cast<std::uint64_t>(ranks) * words)
            rank_ok = false;
        }
      } else if (pattern == "gatherv") {
        const std::vector<std::uint64_t> send(words, rank);
        std::vector<std::vector<std::uint64_t>> recv;
        world->gatherv(std::span<const std::uint64_t>(send), recv, 0);
        if (world->rank() == 0) {
          if (recv.size() != static_cast<std::size_t>(ranks)) rank_ok = false;
          for (std::size_t r = 0; rank_ok && r < recv.size(); ++r)
            if (recv[r].size() != words || recv[r].front() != r)
              rank_ok = false;
        }
      } else {  // bcast
        std::vector<std::uint64_t> buffer(words,
                                          world->rank() == 0 ? 7 : 0);
        world->bcast(std::span<std::uint64_t>(buffer), 0);
        for (const std::uint64_t value : buffer)
          if (value != 7) rank_ok = false;
      }
      std::lock_guard lock(mu);
      if (!rank_ok) cell.ok = false;
      if (world->rank() == 0) cell.volume = world->volume();
    });
    return cell;
  };

  TablePrinter table({"substrate", "pattern", "words", "total bytes",
                      "root ingest", "modeled_s"});
  bool semantics_ok = true;
  bool bytes_invariant = true;
  // Per (pattern, words): total bytes of the mpisim leg, checked against
  // the ncclsim leg - the substrate changes the clock, never the traffic.
  std::vector<std::uint64_t> mpisim_bytes;
  std::size_t cell_index = 0;
  double ncclsim_allreduce_largest_s = 0.0;

  for (const comm::SubstrateKind kind : kinds) {
    std::size_t check_index = 0;
    for (const char* pattern : patterns) {
      for (const std::size_t words : payload_words) {
        const Cell cell = run_cell(kind, pattern, words);
        if (!cell.ok) semantics_ok = false;
        const comm::CommVolume& volume = cell.volume;
        if (kind == comm::SubstrateKind::kMpisim) {
          mpisim_bytes.push_back(volume.total());
        } else {
          if (volume.total() != mpisim_bytes[check_index])
            bytes_invariant = false;
          if (std::string(pattern) == "allreduce" &&
              words == payload_words[2])
            ncclsim_allreduce_largest_s = volume.modeled_seconds();
        }
        ++check_index;
        ++cell_index;
        table.add_row(
            {comm::substrate_name(kind), pattern,
             TablePrinter::fmt_int(static_cast<long long>(words)),
             TablePrinter::fmt_int(static_cast<long long>(volume.total())),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.root_ingest_bytes)),
             TablePrinter::fmt(volume.modeled_seconds(), 7)});
        json.begin_row();
        json.field("pattern", std::string(pattern));
        json.field("words", static_cast<double>(words));
        bench::add_comm_volume_fields(json, volume);
        const std::string cell_key = std::string(comm::substrate_name(kind)) +
                                     "_" + pattern + "_w" +
                                     std::to_string(words);
        json.summary(cell_key + "_modeled_s", volume.modeled_seconds());
        json.summary(cell_key + "_bytes",
                     static_cast<double>(volume.total()));
      }
    }
  }
  table.print();

  // The ncclsim allreduce charge is one allreduce_cost call on the ring
  // model; recompute the closed form from the composed parameters. Hop
  // parameters are remote (the ring spans nodes on this shape).
  const comm::NetworkModel nccl = comm::network_model_for(
      comm::SubstrateKind::kNcclsim, base);
  const double total_ranks = static_cast<double>(ranks);
  const double steps = 2.0 * (total_ranks - 1.0);
  const double bytes =
      static_cast<double>(payload_words[2]) * sizeof(std::uint64_t);
  const double exact_form =
      nccl.launch_latency_s + steps * nccl.remote_latency_s +
      steps / total_ranks * bytes / nccl.remote_bandwidth_bps;
  // The model charges on an integer-nanosecond clock; quantize the closed
  // form the same way before the tight comparison.
  const double closed_form = std::floor(exact_form * 1e9) * 1e-9;
  const double ring_error =
      closed_form > 0.0
          ? std::abs(ncclsim_allreduce_largest_s - closed_form) / closed_form
          : 1.0;
  const bool ring_matches = ring_error <= 1e-6;

  std::printf("\ncells: %zu (2 substrates x 5 patterns x %zu payloads)\n",
              cell_index, std::size(payload_words));
  std::printf("check: collective semantics correct in every cell: %s\n",
              semantics_ok ? "PASS" : "FAIL");
  std::printf("check: byte counters substrate-invariant: %s\n",
              bytes_invariant ? "PASS" : "FAIL");
  std::printf("check: ncclsim ring allreduce closed form (rel err %.2e): "
              "%s\n",
              ring_error, ring_matches ? "PASS" : "FAIL");
  json.summary("cells", static_cast<double>(cell_index));
  json.summary("semantics_ok", semantics_ok ? 1.0 : 0.0);
  json.summary("bytes_substrate_identical", bytes_invariant ? 1.0 : 0.0);
  json.summary("ring_closed_form_ok", ring_matches ? 1.0 : 0.0);
  json.write();
  return semantics_ok && bytes_invariant && ring_matches ? 0 : 1;
}
