// Ablation for tree-merge sparse reductions: under a flat merge reduction
// every per-rank delta image lands at the root whole, so root ingest grows
// as O(P x nnz); the tree merge combines images at interior ranks (with
// mid-tree densification), so the root ingests only its direct children's
// merged images. On a hub-heavy graph (Barabasi-Albert) per-rank deltas
// overlap strongly and the merged unions shrink well below the sum of
// their parts. Acceptance:
//   * root-ingest bytes under tree merge strictly below the rooted flat
//     merge (radix = P: every rank a direct child of the root, the shape
//     a decentralized flat merge replaced) for P >= 16 (any radix). The
//     radix-0 "flat" arm itself is the symmetric allreduce_merge: no rank
//     is a root during adaptive epochs, so its residual ingest is the
//     calibration phase's rooted reduction only,
//   * deterministic-mode scores bitwise identical across
//     flat/tree x dense/sparse/auto at every P,
//   * tree root ingest bounded by radix x the densify-capped image - the
//     O(radix) cap that replaces flat's O(P x nnz) growth. (Total moved
//     bytes legitimately rise with tree depth - pairs cross one hop per
//     level - which is the latency-for-ingest tradeoff the per-hop
//     alpha-beta charge prices.)
// A second section prices completion deadlines on the interconnect model
// at P = 16 across four arms - flat merge, single-level radix-2 tree, the
// two-level composition (node pre-reduce + leader tree), and the same
// two-level path aggregated non-blocking so interior combines overlap the
// caller's sampling. Acceptance: the overlapped two-level arm's analytic
// critical path (modeled_s) strictly undercuts the single-level tree's.
// The --json object (BENCH_tree_merge.json in CI) carries root-ingest,
// per-collective bytes, and the modeled-seconds anchors for every
// configuration and feeds the CI bench-regression gate.
#include <algorithm>
#include <string>
#include <string_view>

#include "bench_common.hpp"
#include "gen/barabasi_albert.hpp"
#include "graph/components.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("vertices", "graph size (hub overlap is the point)");
  config.options.describe("eps", "betweenness epsilon");
  config.options.describe("n0", "per-stream epoch share (n0 = share x P)");
  config.options.describe("modeled_n0",
                          "per-stream epoch share of the modeled-s section");
  config.options.describe("modeled_eps",
                          "betweenness epsilon of the modeled-s section");
  config.finish("Tree-merge sparse reductions: root ingest vs P.");
  bench::print_preamble(
      "Ablation - tree merge (flat | radix 2 | radix 4)",
      "§IV-E hierarchy generalized to the reduction tree; root ingest "
      "O(log P)",
      config);
  bench::JsonReport json("ablation_tree_merge", config);

  const auto vertices = static_cast<std::uint32_t>(
      config.options.get_u64("vertices", 2000));
  const double eps = config.options.get_double("eps", 0.1);
  const auto n0_share = config.options.get_u64("n0", 16);
  const graph::Graph graph = graph::largest_component(
      gen::barabasi_albert(vertices, 3, config.seed));
  std::printf("instance: Barabasi-Albert |V|=%u |E|=%llu, eps=%.3g\n\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()), eps);
  json.param("vertices", static_cast<double>(graph.num_vertices()));
  json.param("n0_share", static_cast<double>(n0_share));

  const std::vector<int> rank_counts =
      config.options.has("ranks")
          ? std::vector<int>{static_cast<int>(
                config.options.get_u64("ranks", 16))}
          : std::vector<int>{4, 16};
  const int radixes[] = {0, 2, 4};  // 0 = flat
  const bc::FrameRep reps[] = {bc::FrameRep::kDense, bc::FrameRep::kSparse,
                               bc::FrameRep::kAuto};

  const auto run = [&](int ranks, int radix, bc::FrameRep rep) {
    bc::KadabraOptions options;
    options.params.epsilon = eps;
    options.params.seed = config.seed;
    options.params.exact_diameter = false;
    options.engine.threads_per_rank = 1;
    // Deterministic mode pins the sample set: every configuration
    // aggregates the same frames, so byte counts are comparable and
    // scores must be bitwise identical.
    options.engine.deterministic = true;
    options.engine.virtual_streams = static_cast<std::uint64_t>(ranks);
    options.engine.epoch_base = n0_share * static_cast<std::uint64_t>(ranks);
    options.engine.epoch_exponent = 0.0;
    options.engine.frame_rep = rep;
    options.engine.tree_radix = radix;
    return bc::kadabra_mpi(graph, options, ranks, /*ranks_per_node=*/1,
                           mpisim::NetworkModel::disabled());
  };

  TablePrinter table({"P", "mode", "rep", "epochs", "agg bytes",
                      "merge bytes", "root ingest"});
  bool bitwise_identical = true;
  bool tree_cuts_ingest = true;
  bool ingest_bounded = true;
  // A merged image never exceeds its densify cap (threshold 1.0: the dense
  // image), so the root ingests at most radix such images per epoch.
  const std::uint64_t dense_image_bytes =
      (static_cast<std::uint64_t>(graph.num_vertices()) + 2) *
      sizeof(std::uint64_t);
  std::uint64_t rooted_sparse_ingest_pmax = 0;
  std::uint64_t flat_sparse_ingest_pmax = 0;
  std::uint64_t tree2_sparse_ingest_pmax = 0;
  const int p_max = *std::max_element(rank_counts.begin(), rank_counts.end());

  for (const int ranks : rank_counts) {
    // Per-P baseline: flat x dense. Virtual streams scale with P, so
    // identity is checked within one cluster shape.
    const bc::BcResult baseline = run(ranks, 0, bc::FrameRep::kDense);
    // The rooted reference: radix = P puts every rank directly under the
    // root - the flat *rooted* reduction a decentralized merge replaced,
    // and the O(P x nnz) ingest the tree arms are measured against.
    const bc::BcResult rooted = run(ranks, ranks, bc::FrameRep::kSparse);
    const std::uint64_t rooted_sparse_ingest =
        rooted.comm_volume.root_ingest_bytes;
    if (ranks == p_max) rooted_sparse_ingest_pmax = rooted_sparse_ingest;
    table.add_row(
        {TablePrinter::fmt_int(ranks), "rooted", "sparse",
         TablePrinter::fmt_int(static_cast<long long>(rooted.epochs)),
         TablePrinter::fmt_int(
             static_cast<long long>(rooted.comm_volume.aggregation_bytes())),
         TablePrinter::fmt_int(
             static_cast<long long>(rooted.comm_volume.reduce_merge_bytes)),
         TablePrinter::fmt_int(
             static_cast<long long>(rooted_sparse_ingest))});
    json.begin_row();
    json.field("ranks", static_cast<double>(ranks));
    json.field("tree_radix", static_cast<double>(ranks));
    json.field("rep", "rooted_sparse");
    json.field("epochs", static_cast<double>(rooted.epochs));
    json.field("samples", static_cast<double>(rooted.samples));
    json.field("sparse_wire", 1.0);
    bench::add_comm_volume_fields(json, rooted.comm_volume);
    for (std::size_t v = 0; v < rooted.scores.size(); ++v)
      if (rooted.scores.size() != baseline.scores.size() ||
          rooted.scores[v] != baseline.scores[v]) {
        bitwise_identical = false;
        break;
      }

    for (const int radix : radixes) {
      for (const bc::FrameRep rep : reps) {
        const bc::BcResult result = run(ranks, radix, rep);
        const mpisim::CommVolume& volume = result.comm_volume;
        const bool sparse_wire = rep != bc::FrameRep::kDense;
        if (radix == 0 && rep == bc::FrameRep::kSparse && ranks == p_max)
          flat_sparse_ingest_pmax = volume.root_ingest_bytes;
        if (radix != 0 && sparse_wire) {
          // The acceptance check: interior merging must strictly shrink
          // what the root ingests on large P (every image shares at least
          // the tau pair, and hub overlap shrinks unions further), and
          // ingest stays under the O(radix) densify cap per epoch.
          if (ranks >= 16 && rep == bc::FrameRep::kSparse &&
              volume.root_ingest_bytes >= rooted_sparse_ingest)
            tree_cuts_ingest = false;
          if (volume.root_ingest_bytes > static_cast<std::uint64_t>(radix) *
                                             dense_image_bytes *
                                             result.epochs)
            ingest_bounded = false;
          if (ranks == p_max && radix == 2 && rep == bc::FrameRep::kSparse)
            tree2_sparse_ingest_pmax = volume.root_ingest_bytes;
        }

        if (result.samples != baseline.samples ||
            result.scores.size() != baseline.scores.size())
          bitwise_identical = false;
        for (std::size_t v = 0; v < result.scores.size(); ++v)
          if (result.scores[v] != baseline.scores[v]) {
            bitwise_identical = false;
            break;
          }

        const std::string mode =
            radix == 0 ? "flat" : "tree r=" + std::to_string(radix);
        table.add_row(
            {TablePrinter::fmt_int(ranks), mode,
             epoch::frame_rep_name(rep),
             TablePrinter::fmt_int(static_cast<long long>(result.epochs)),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.aggregation_bytes())),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.reduce_merge_bytes)),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.root_ingest_bytes))});
        json.begin_row();
        json.field("ranks", static_cast<double>(ranks));
        json.field("tree_radix", static_cast<double>(radix));
        json.field("rep", epoch::frame_rep_name(rep));
        json.field("epochs", static_cast<double>(result.epochs));
        json.field("samples", static_cast<double>(result.samples));
        json.field("sparse_wire", sparse_wire ? 1.0 : 0.0);
        bench::add_comm_volume_fields(json, volume);
      }
    }
  }
  table.print();

  // --- Modeled critical path: the two-level overlapped merge at P = 16 ----
  // The byte section shows what interior merging does to root ingest; this
  // one prices completion deadlines on the interconnect model (enabled
  // here, unlike above: modeled_s is the metric). Deterministic mode pins
  // the sample set, so modeled_s is an analytic, machine-independent
  // anchor and scores must stay bitwise identical across the arms.
  const int modeled_ranks = 16;
  const int modeled_rpn = 4;
  // Heavier epochs than the byte section: interior combines are priced at
  // combine_bandwidth_bps, so the latency-vs-combine tradeoff the arms
  // differ on only shows once per-hop images carry real payload (small
  // images are pure latency, where a deeper tree and the non-blocking
  // progression stretch both lose).
  const std::uint64_t modeled_n0_share =
      config.options.get_u64("modeled_n0", n0_share * 256);
  // Tighter epsilon than the byte section for the same reason: the sample
  // budget grows ~1/eps^2, and with it the per-epoch delta images.
  const double modeled_eps = config.options.get_double("modeled_eps", 0.01);
  const mpisim::NetworkModel network = bench::bench_network(config);
  struct Arm {
    const char* name;
    bool hierarchical;
    int tree_radix;
    int leader_radix;
    engine::Aggregation aggregation;
  };
  const Arm arms[] = {
      {"flat", false, 0, 0, engine::Aggregation::kIbarrierReduce},
      {"tree", false, 2, 0, engine::Aggregation::kIbarrierReduce},
      {"two_level", true, 0, 2, engine::Aggregation::kIbarrierReduce},
      {"two_level_overlap", true, 0, 2, engine::Aggregation::kIreduce},
  };
  TablePrinter modeled_table(
      {"P", "arm", "modeled_s", "overlapped_s", "root ingest"});
  double modeled_tree_s = 0.0;
  double modeled_two_level_overlap_s = 0.0;
  std::vector<double> flat_scores;
  for (const Arm& arm : arms) {
    bc::KadabraOptions options;
    options.params.epsilon = modeled_eps;
    options.params.seed = config.seed;
    options.params.exact_diameter = false;
    options.engine.threads_per_rank = 1;
    options.engine.deterministic = true;
    options.engine.virtual_streams =
        static_cast<std::uint64_t>(modeled_ranks);
    options.engine.epoch_base =
        modeled_n0_share * static_cast<std::uint64_t>(modeled_ranks);
    options.engine.epoch_exponent = 0.0;
    options.engine.frame_rep = bc::FrameRep::kSparse;
    options.engine.aggregation = arm.aggregation;
    options.engine.hierarchical = arm.hierarchical;
    options.engine.tree_radix = arm.tree_radix;
    options.engine.leader_radix = arm.leader_radix;
    const bc::BcResult result =
        bc::kadabra_mpi(graph, options, modeled_ranks, modeled_rpn, network);
    const mpisim::CommVolume& volume = result.comm_volume;
    const double modeled_s = volume.modeled_seconds();
    if (std::string_view(arm.name) == "tree") modeled_tree_s = modeled_s;
    if (std::string_view(arm.name) == "two_level_overlap")
      modeled_two_level_overlap_s = modeled_s;
    if (flat_scores.empty()) {
      flat_scores = result.scores;
    } else {
      if (result.scores.size() != flat_scores.size())
        bitwise_identical = false;
      for (std::size_t v = 0; v < result.scores.size(); ++v)
        if (result.scores[v] != flat_scores[v]) {
          bitwise_identical = false;
          break;
        }
    }
    modeled_table.add_row(
        {TablePrinter::fmt_int(modeled_ranks), arm.name,
         TablePrinter::fmt(modeled_s, 6),
         TablePrinter::fmt(
             static_cast<double>(volume.overlapped_combine_ns) * 1e-9, 6),
         TablePrinter::fmt_int(
             static_cast<long long>(volume.root_ingest_bytes))});
    json.begin_row();
    json.field("ranks", static_cast<double>(modeled_ranks));
    json.field("ranks_per_node", static_cast<double>(modeled_rpn));
    json.field("arm", arm.name);
    json.field("epochs", static_cast<double>(result.epochs));
    json.field("samples", static_cast<double>(result.samples));
    bench::add_comm_volume_fields(json, volume);
  }
  std::printf("\nmodeled critical path at P=%d (%d ranks/node):\n",
              modeled_ranks, modeled_rpn);
  modeled_table.print();
  const bool overlap_cuts_modeled =
      modeled_two_level_overlap_s < modeled_tree_s;
  std::printf("check: two-level overlap cuts modeled_s vs single-level "
              "tree: %s (%.6fs vs %.6fs)\n",
              overlap_cuts_modeled ? "PASS" : "FAIL",
              modeled_two_level_overlap_s, modeled_tree_s);

  const double ingest_ratio =
      tree2_sparse_ingest_pmax > 0
          ? static_cast<double>(rooted_sparse_ingest_pmax) /
                static_cast<double>(tree2_sparse_ingest_pmax)
          : 0.0;
  std::printf("\nroot ingest at P=%d (sparse): rooted %llu vs tree r=2 %llu "
              "= %.2fx (decentralized flat: %llu, calibration only)\n",
              p_max,
              static_cast<unsigned long long>(rooted_sparse_ingest_pmax),
              static_cast<unsigned long long>(tree2_sparse_ingest_pmax),
              ingest_ratio,
              static_cast<unsigned long long>(flat_sparse_ingest_pmax));
  std::printf("check: tree merge cuts root ingest for P >= 16: %s\n",
              tree_cuts_ingest ? "PASS" : "FAIL");
  std::printf("check: tree root ingest bounded by radix x densify cap: %s\n",
              ingest_bounded ? "PASS" : "FAIL");
  std::printf("check: bitwise-identical deterministic results: %s\n",
              bitwise_identical ? "PASS" : "FAIL");
  json.summary("rooted_sparse_root_ingest",
               static_cast<double>(rooted_sparse_ingest_pmax));
  json.summary("flat_sparse_root_ingest",
               static_cast<double>(flat_sparse_ingest_pmax));
  json.summary("tree2_sparse_root_ingest",
               static_cast<double>(tree2_sparse_ingest_pmax));
  json.summary("rooted_over_tree_ingest", ingest_ratio);
  json.summary("tree_cuts_root_ingest", tree_cuts_ingest ? 1.0 : 0.0);
  json.summary("tree_ingest_bounded", ingest_bounded ? 1.0 : 0.0);
  json.summary("modeled_tree_s", modeled_tree_s);
  json.summary("modeled_two_level_overlap_s", modeled_two_level_overlap_s);
  json.summary("tree_over_two_level_overlap_modeled",
               modeled_two_level_overlap_s > 0.0
                   ? modeled_tree_s / modeled_two_level_overlap_s
                   : 0.0);
  json.summary("two_level_overlap_cuts_modeled_s",
               overlap_cuts_modeled ? 1.0 : 0.0);
  json.summary("bitwise_identical", bitwise_identical ? 1.0 : 0.0);
  json.write();
  return tree_cuts_ingest && ingest_bounded && bitwise_identical &&
                 overlap_cuts_modeled
             ? 0
             : 1;
}
