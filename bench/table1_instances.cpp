// Reproduces Table I: the instance suite with |V|, |E| and exact diameter,
// side by side with the paper's real-world rows the proxies substitute.
#include "bench_common.hpp"
#include "graph/diameter.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.finish("Table I: instance suite.");
  bench::print_preamble("Table I - instances",
                        "paper Table I (KONECT/DIMACS instances -> synthetic "
                        "proxies, see DESIGN.md substitution #2)",
                        config);

  TablePrinter table({"proxy", "paper instance", "paper |V|", "paper |E|",
                      "paper D", "|V|", "|E|", "D", "avg deg"});
  for (const auto& spec : config.suite()) {
    const auto graph = spec.build(config.scale, config.seed);
    const auto diameter = graph::ifub_diameter(graph).diameter;
    const auto stats = graph::degree_stats(graph);
    table.add_row({spec.name, spec.paper_name,
                   spec.paper_vertices ? TablePrinter::fmt_int(
                                             static_cast<long long>(
                                                 spec.paper_vertices))
                                       : "-",
                   spec.paper_edges ? TablePrinter::fmt_int(
                                          static_cast<long long>(
                                              spec.paper_edges))
                                    : "-",
                   spec.paper_diameter
                       ? TablePrinter::fmt_int(spec.paper_diameter)
                       : "-",
                   TablePrinter::fmt_int(graph.num_vertices()),
                   TablePrinter::fmt_int(
                       static_cast<long long>(graph.num_edges())),
                   TablePrinter::fmt_int(diameter),
                   TablePrinter::fmt(stats.mean, 1)});
  }
  table.print();
  std::printf(
      "\nShape check: road proxies keep avg deg < 4 and diameters in the "
      "hundreds;\nsocial/web proxies keep heavy-tailed degrees and "
      "diameters ~10-40, as in the paper.\n");
  return 0;
}
