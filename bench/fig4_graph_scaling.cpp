// Reproduces Figure 4: adaptive-sampling time relative to graph size on
// synthetic graphs - (a) R-MAT with Graph500 parameters, (b) random
// hyperbolic graphs with power-law exponent 3; |E| = 30 |V| in both models.
//
// The paper sweeps |V| = 2^23..2^26 on 16 nodes; this proxy sweeps
// 2^12..2^15 (scale with `minscale=`/`maxscale=`). Expected shape: time per
// vertex grows mildly superlinearly on R-MAT (~1.85x from smallest to
// largest in the paper) and stays flat on hyperbolic graphs.
#include "bench_common.hpp"
#include "gen/hyperbolic.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("minscale", "smallest log2 vertex scale");
  config.options.describe("maxscale", "largest log2 vertex scale");
  config.options.describe("eps", "betweenness epsilon");
  config.finish("Figure 4: graph-size scaling.");
  bench::print_preamble("Figure 4 - ADS time vs graph size (R-MAT, RHG)",
                        "paper Fig. 4a/4b", config);

  const auto min_scale =
      static_cast<std::uint32_t>(config.options.get_u64("minscale", 12));
  const auto max_scale =
      static_cast<std::uint32_t>(config.options.get_u64("maxscale", 15));
  const int p = static_cast<int>(config.options.get_u64("ranks", 8));
  const double epsilon = config.options.get_double("eps", 0.02);

  auto run = [&](const graph::Graph& graph) {
    bc::KadabraOptions options;
    options.params.epsilon = epsilon;
    options.params.seed = config.seed;
    options.engine.epoch_base = bench::bench_epoch_base(config);
    return bc::kadabra_mpi(graph, options, p, 1, bench::bench_network(config));
  };

  std::printf("(a) R-MAT, |E| = 30 |V|, P=%d, eps=%.3g\n", p, epsilon);
  TablePrinter rmat_table(
      {"log2 |V|", "|V|", "|E|", "ADS (s)", "time/|V| (us)"});
  double rmat_first_per_vertex = 0.0;
  double rmat_last_per_vertex = 0.0;
  for (std::uint32_t s = min_scale; s <= max_scale; ++s) {
    gen::RmatParams params;
    params.scale = s;
    params.edge_factor = 30.0;
    const auto graph = graph::largest_component(gen::rmat(params, config.seed));
    const auto result = run(graph);
    const double per_vertex =
        result.adaptive_seconds / graph.num_vertices() * 1e6;
    if (s == min_scale) rmat_first_per_vertex = per_vertex;
    rmat_last_per_vertex = per_vertex;
    rmat_table.add_row(
        {std::to_string(s), TablePrinter::fmt_int(graph.num_vertices()),
         TablePrinter::fmt_int(static_cast<long long>(graph.num_edges())),
         TablePrinter::fmt(result.adaptive_seconds, 2),
         TablePrinter::fmt(per_vertex, 3)});
  }
  rmat_table.print();
  std::printf("R-MAT growth factor (largest/smallest time-per-vertex): "
              "%.2fx (paper: 1.85x)\n\n",
              rmat_last_per_vertex / rmat_first_per_vertex);

  std::printf("(b) Random hyperbolic, power law 3, |E| = 30 |V|\n");
  TablePrinter rhg_table(
      {"log2 |V|", "|V|", "|E|", "ADS (s)", "time/|V| (us)"});
  double rhg_first_per_vertex = 0.0;
  double rhg_last_per_vertex = 0.0;
  for (std::uint32_t s = min_scale; s <= max_scale; ++s) {
    gen::HyperbolicParams params;
    params.num_vertices = 1u << s;
    params.average_degree = 60.0;
    const auto graph =
        graph::largest_component(gen::hyperbolic(params, config.seed));
    const auto result = run(graph);
    const double per_vertex =
        result.adaptive_seconds / graph.num_vertices() * 1e6;
    if (s == min_scale) rhg_first_per_vertex = per_vertex;
    rhg_last_per_vertex = per_vertex;
    rhg_table.add_row(
        {std::to_string(s), TablePrinter::fmt_int(graph.num_vertices()),
         TablePrinter::fmt_int(static_cast<long long>(graph.num_edges())),
         TablePrinter::fmt(result.adaptive_seconds, 2),
         TablePrinter::fmt(per_vertex, 3)});
  }
  rhg_table.print();
  std::printf("RHG growth factor: %.2fx (paper: ~1.0x, i.e. linear "
              "scaling)\n",
              rhg_last_per_vertex / rhg_first_per_vertex);
  return 0;
}
