// Churn ablation - the dynamic-graphs headline: incremental betweenness
// (src/dynamic/ sample-ledger refresh) vs full recomputation under edge
// churn, on a Barabasi-Albert graph at churn rates of 0.01%, 0.1%, and 1%
// of the edges per batch.
//
// Every batch is generated deterministically (inserts are random absent
// edges; deletions recycle edges inserted by earlier batches, so the
// original graph's connectivity is preserved by construction) and the two
// modes replay the SAME batch sequence:
//
//   incremental  one engine survives all batches; per batch it classifies
//                its retained samples against the batch sketches, redraws
//                only the dirty ones, and re-runs the stop rule;
//   full         a fresh engine per graph version (diameter, calibration,
//                and every sample from scratch).
//
// The gated headline counters are deterministic (single-threaded engine,
// per-sample RNG streams): the dirty-sample fraction per churn rate, the
// fraction of full-mode sample draws the incremental path avoids, and the
// acceptance bool `dirty_fraction_bounded` (< 25% dirty at 0.1% churn).
// Wall clocks are reported as est_*_seconds and skipped by the gate.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dynamic/edge_batch.hpp"
#include "dynamic/incremental_bc.hpp"
#include "dynamic/mutable_graph.hpp"
#include "gen/barabasi_albert.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace distbc {
namespace {

struct ChurnPoint {
  double fraction;  // of the edge count, per batch
  const char* tag;  // summary-field suffix ("0p01" = 0.01%)
};

/// The deterministic batch sequence for one churn rate: `count` batches
/// against the evolving graph, `edges_per_batch` inserts each, deletions
/// recycling earlier inserts from the second batch on.
std::vector<dynamic::EdgeBatch> make_batches(
    const std::shared_ptr<const graph::Graph>& initial, int count,
    std::uint64_t edges_per_batch, Rng rng) {
  dynamic::MutableGraph sim(initial);
  std::vector<dynamic::Edge> recyclable;
  std::vector<dynamic::EdgeBatch> batches;
  for (int b = 0; b < count; ++b) {
    const graph::Graph& graph = *sim.snapshot();
    dynamic::EdgeBatch batch;
    std::vector<dynamic::Edge> added;
    while (added.size() < edges_per_batch) {
      auto [x, y] = rng.next_distinct_pair(graph.num_vertices());
      const dynamic::Edge edge{
          static_cast<graph::Vertex>(std::min(x, y)),
          static_cast<graph::Vertex>(std::max(x, y))};
      if (graph.has_edge(edge.u, edge.v)) continue;
      bool queued = false;
      for (const dynamic::Edge& seen : added) queued |= seen == edge;
      if (queued) continue;
      batch.insert(edge.u, edge.v);
      added.push_back(edge);
    }
    if (b > 0) {
      // Delete half a batch worth of earlier inserts: the original edges
      // never leave, so the graph stays connected with no retry loop.
      const std::size_t deletions =
          std::min<std::size_t>(recyclable.size(), (edges_per_batch + 1) / 2);
      for (std::size_t i = 0; i < deletions; ++i)
        batch.remove(recyclable[i].u, recyclable[i].v);
      recyclable.erase(recyclable.begin(),
                       recyclable.begin() + static_cast<long>(deletions));
    }
    recyclable.insert(recyclable.end(), added.begin(), added.end());
    const api::Status status = batch.validate(graph);
    if (!status.ok) {
      std::fprintf(stderr, "batch generation bug: %s\n",
                   status.message.c_str());
      std::exit(1);
    }
    sim.apply(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace
}  // namespace distbc

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  const std::uint64_t vertices =
      config.options.get_u64("vertices", 3500, "Barabasi-Albert vertices");
  const std::uint64_t attach =
      config.options.get_u64("attach", 2, "edges per new vertex");
  const double epsilon =
      config.options.get_double("eps", 0.05, "KADABRA epsilon");
  const int batches = static_cast<int>(
      config.options.get_u64("batches", 5, "churn batches per rate"));
  const std::uint64_t sketch_cap = config.options.get_u64(
      "sketch_cap", 256, "scanned-set sketch size kept exact");
  const int sample_batch = static_cast<int>(
      config.options.get_u64("sample_batch", 16, "traversal-kernel width"));
  config.finish(
      "Incremental betweenness vs full recompute under edge churn");
  bench::print_preamble("churn ablation (incremental vs full recompute)",
                        "dynamic-graphs extension (not in the paper)",
                        config);

  const auto initial =
      std::make_shared<const graph::Graph>(graph::largest_component(
          gen::barabasi_albert(static_cast<graph::Vertex>(vertices),
                               static_cast<std::uint32_t>(attach),
                               config.seed)));
  const std::uint64_t edges = initial->num_edges();
  std::printf("graph: barabasi_albert n=%llu attach=%llu -> %u vertices, "
              "%llu edges\n\n",
              static_cast<unsigned long long>(vertices),
              static_cast<unsigned long long>(attach),
              initial->num_vertices(),
              static_cast<unsigned long long>(edges));

  bc::KadabraParams params;
  params.epsilon = epsilon;
  params.delta = 0.1;
  params.seed = config.seed;
  params.exact_diameter = true;
  dynamic::SketchParams sketch;
  sketch.exact_cap = static_cast<std::uint32_t>(sketch_cap);

  bench::JsonReport json("churn_ablation", config);
  json.param("vertices", static_cast<double>(initial->num_vertices()));
  json.param("edges", static_cast<double>(edges));
  json.param("eps", epsilon);
  json.param("batches", static_cast<double>(batches));
  json.param("sketch_cap", static_cast<double>(sketch_cap));

  const std::vector<ChurnPoint> points = {
      {0.0001, "0p01"}, {0.001, "0p10"}, {0.01, "1p00"}};
  std::printf("%8s %12s %8s %8s %10s %10s %12s %12s\n", "churn", "mode",
              "batches", "edges/b", "dirty", "retained", "draws",
              "est_seconds");

  double bounded_dirty_fraction = -1.0;
  for (const ChurnPoint& point : points) {
    const auto edges_per_batch = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(point.fraction *
                                      static_cast<double>(edges) + 0.5));
    const std::vector<dynamic::EdgeBatch> sequence = make_batches(
        initial, batches, edges_per_batch,
        Rng(config.seed).split(static_cast<std::uint64_t>(
            point.fraction * 1e6)));

    // --- Incremental: one engine, refresh per batch --------------------
    const WallTimer incremental_timer;
    dynamic::IncrementalBc engine(params, sketch, sample_batch);
    engine.run(initial);
    const std::uint64_t initial_draws = engine.next_stream();
    dynamic::MutableGraph mutable_graph(initial);
    std::uint64_t dirty = 0, retained = 0, topup = 0, recalibrations = 0;
    for (const dynamic::EdgeBatch& batch : sequence) {
      mutable_graph.apply(batch);
      const std::uint32_t bound =
          batch.deletes().empty()
              ? 0
              : graph::vertex_diameter(*mutable_graph.snapshot(),
                                       params.exact_diameter);
      const auto stats =
          engine.refresh(mutable_graph.snapshot(), batch, bound);
      dirty += stats.dirty;
      retained += stats.retained;
      topup += stats.topup;
      recalibrations += stats.recalibrated ? 1 : 0;
    }
    const double incremental_seconds = incremental_timer.elapsed_s();
    // Fresh draws the churn cost: everything after the initial build.
    const std::uint64_t incremental_draws =
        engine.next_stream() - initial_draws;
    const double dirty_fraction =
        static_cast<double>(dirty) / static_cast<double>(dirty + retained);

    // --- Full recompute: a fresh engine per graph version --------------
    const WallTimer full_timer;
    std::uint64_t full_draws = 0;
    {
      dynamic::MutableGraph replay(initial);
      for (const dynamic::EdgeBatch& batch : sequence) {
        replay.apply(batch);
        dynamic::IncrementalBc fresh(params, sketch, sample_batch);
        fresh.run(replay.snapshot());
        full_draws += fresh.next_stream();
      }
    }
    const double full_seconds = full_timer.elapsed_s();
    const double draws_saved =
        1.0 - static_cast<double>(incremental_draws) /
                  static_cast<double>(full_draws);

    std::printf("%7.2f%% %12s %8d %8llu %10llu %10llu %12llu %12.3f\n",
                point.fraction * 100.0, "incremental", batches,
                static_cast<unsigned long long>(edges_per_batch),
                static_cast<unsigned long long>(dirty),
                static_cast<unsigned long long>(retained),
                static_cast<unsigned long long>(incremental_draws),
                incremental_seconds);
    std::printf("%7.2f%% %12s %8d %8llu %10s %10s %12llu %12.3f\n",
                point.fraction * 100.0, "full", batches,
                static_cast<unsigned long long>(edges_per_batch), "-", "-",
                static_cast<unsigned long long>(full_draws), full_seconds);

    json.begin_row();
    json.field("churn_pct", point.fraction * 100.0);
    json.field("mode", "incremental");
    json.field("edges_per_batch", static_cast<double>(edges_per_batch));
    json.field("dirty", static_cast<double>(dirty));
    json.field("retained", static_cast<double>(retained));
    json.field("topup", static_cast<double>(topup));
    json.field("recalibrations", static_cast<double>(recalibrations));
    json.field("draws", static_cast<double>(incremental_draws));
    json.field("est_seconds", incremental_seconds);
    json.begin_row();
    json.field("churn_pct", point.fraction * 100.0);
    json.field("mode", "full");
    json.field("edges_per_batch", static_cast<double>(edges_per_batch));
    json.field("draws", static_cast<double>(full_draws));
    json.field("est_seconds", full_seconds);

    const std::string tag = point.tag;
    json.summary("churn_" + tag + "_dirty_fraction", dirty_fraction);
    json.summary("churn_" + tag + "_draws_saved_frac", draws_saved);
    json.summary("est_churn_" + tag + "_incremental_seconds",
                 incremental_seconds);
    json.summary("est_churn_" + tag + "_full_seconds", full_seconds);
    if (point.fraction == 0.001) bounded_dirty_fraction = dirty_fraction;
  }

  // The acceptance headline: at 0.1% churn the ledger invalidates fewer
  // than a quarter of the retained samples.
  json.summary("dirty_fraction_bounded",
               bounded_dirty_fraction >= 0.0 && bounded_dirty_fraction < 0.25
                   ? 1.0
                   : 0.0);
  std::printf("\ndirty fraction @ 0.1%% churn: %.4f (bound: < 0.25)\n",
              bounded_dirty_fraction);
  json.write();
  return 0;
}
