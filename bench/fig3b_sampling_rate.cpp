// Reproduces Figure 3b: sampling throughput normalized by machine size -
// samples / (ADS time * P) - across the node sweep. A flat curve means the
// adaptive sampling phase scales linearly: almost all communication is
// hidden behind sampling.
//
// Second section: the batched traversal kernel. One thread samples a
// Barabasi-Albert proxy through the scalar PathSampler and through
// bc::BatchSampler at each batch width; the headline number is the batched
// samples/sec multiple over scalar at the default shape (|V| = 200k,
// degree 8). Batch width 1 is also checked bitwise against the scalar
// sampler - the deterministic counter the CI regression gate keys on.
//
// --json / out= emit a machine-readable snapshot: wall-clock rates (named
// *_rate / *speedup*, skipped by ci/compare_bench.py) plus deterministic
// counters (recorded-count sums, tau accounting, the bitwise check) that
// are machine independent and gated against bench/baselines/.
#include "bench_common.hpp"

#include "bc/batch_sampler.hpp"
#include "bc/sampler.hpp"
#include "epoch/state_frame.hpp"
#include "gen/barabasi_albert.hpp"
#include "support/timer.hpp"

#include <algorithm>

namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  const std::uint64_t batch_vertices = config.options.get_u64(
      "batch_n", 200000, "BA vertices of the batched-kernel section");
  const std::uint64_t batch_samples = config.options.get_u64(
      "batch_samples", 4000, "samples per width in the batched section");
  const std::uint64_t batch_reps = config.options.get_u64(
      "batch_reps", 5, "interleaved repetitions per width (median taken)");
  config.finish("Figure 3b: sampling rate.");
  bench::print_preamble(
      "Figure 3b - samples/(time * P) during adaptive sampling",
      "paper Fig. 3b (flat curve = linear sampling scalability)", config);
  bench::JsonReport json("fig3b_sampling_rate", config);

  const auto ranks = bench::rank_sweep(config);
  std::vector<std::vector<double>> rates(ranks.size());

  TablePrinter table({"instance", "P=1", "P=2", "P=4", "P=8", "P=16"});
  for (const auto& spec : config.suite()) {
    const auto graph = spec.build(config.scale, config.seed);
    std::vector<std::string> row{spec.name};
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const bc::KadabraOptions options =
          bench::bench_mpi_options(spec, config);
      const bc::BcResult result = bc::kadabra_mpi(
          graph, options, ranks[i], /*ranks_per_node=*/1,
          bench::bench_network(config));
      const double rate =
          result.adaptive_seconds > 0
              ? static_cast<double>(result.samples_attempted) /
                    (result.adaptive_seconds * ranks[i])
              : 0.0;
      rates[i].push_back(rate);
      row.push_back(TablePrinter::fmt(rate, 0));
      json.begin_row();
      json.field("section", "rank_sweep");
      json.field("instance", spec.name);
      json.field("ranks", static_cast<double>(ranks[i]));
      json.field("samples_per_sec_per_rank_rate", rate);
    }
    while (row.size() < 6) row.push_back("-");
    table.add_row(row);
  }
  table.print();

  std::printf("\nGeometric-mean samples/(s * P):\n");
  TablePrinter summary({"# compute nodes", "samples/(s*P)"});
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const double geomean = bench::geometric_mean(rates[i]);
    summary.add_row({std::to_string(ranks[i]), TablePrinter::fmt(geomean, 0)});
    json.summary("p" + std::to_string(ranks[i]) + "_geomean_rate", geomean);
  }
  summary.print();
  std::printf("\nPaper shape: the normalized rate stays flat across P "
              "(600-1000 samples/(s*node)\non their hardware; absolute "
              "values differ on this substrate).\n");

  // --- Batched traversal kernel (graph::BatchedBidirectionalBfs) -----------
  std::printf("\n=== Batched traversal kernel - single-thread sampling rate "
              "===\nBA graph: %llu vertices, degree 8, seed %llu; %llu "
              "samples per width,\nmedian of %llu interleaved reps.\n\n",
              static_cast<unsigned long long>(batch_vertices),
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(batch_samples),
              static_cast<unsigned long long>(batch_reps));
  const graph::Graph ba = gen::barabasi_albert(
      static_cast<graph::Vertex>(batch_vertices), 8, config.seed);
  const graph::Vertex n = ba.num_vertices();
  const std::vector<int> widths = {1, 2, 4, 8, 16, 32};

  // Interleaved timing: scalar and every width measured once per rep, so
  // machine noise hits all configurations alike; per config the median
  // rep counts. Every rep re-creates the sampler with the same stream, so
  // the sample set per configuration is fixed.
  std::vector<double> scalar_times;
  std::vector<std::vector<double>> width_times(widths.size());
  epoch::StateFrame scalar_frame(n);
  std::vector<epoch::StateFrame> width_frames(widths.size(),
                                              epoch::StateFrame(n));
  for (std::uint64_t rep = 0; rep < batch_reps; ++rep) {
    {
      scalar_frame.clear();
      bc::PathSampler sampler(ba, Rng(config.seed).split(0));
      WallTimer timer;
      for (std::uint64_t i = 0; i < batch_samples; ++i)
        sampler.sample(scalar_frame);
      scalar_times.push_back(timer.elapsed_s());
    }
    for (std::size_t w = 0; w < widths.size(); ++w) {
      width_frames[w].clear();
      bc::BatchSampler sampler(ba, Rng(config.seed).split(0), widths[w]);
      WallTimer timer;
      sampler.sample_batch(width_frames[w], batch_samples);
      width_times[w].push_back(timer.elapsed_s());
    }
  }

  const double scalar_rate =
      static_cast<double>(batch_samples) / median(scalar_times);
  // Deterministic counters: batch width 1 replays the scalar RNG sequence
  // exactly, so its frame must be bitwise identical to the scalar one;
  // every width must account every sample in tau.
  bool identical_b1 = true;
  for (std::size_t i = 0; i < scalar_frame.raw().size(); ++i)
    identical_b1 &= scalar_frame.raw()[i] == width_frames[0].raw()[i];
  bool tau_ok = scalar_frame.tau() == batch_samples;
  for (const auto& frame : width_frames)
    tau_ok &= frame.tau() == batch_samples;

  TablePrinter batch_table(
      {"sampler", "samples/s", "vs scalar", "count_sum"});
  batch_table.add_row({"scalar", TablePrinter::fmt(scalar_rate, 0), "1.00x",
                       std::to_string(scalar_frame.count_sum())});
  double best_speedup = 0.0;
  double speedup_b8 = 0.0;
  for (std::size_t w = 0; w < widths.size(); ++w) {
    const double rate =
        static_cast<double>(batch_samples) / median(width_times[w]);
    const double speedup = rate / scalar_rate;
    best_speedup = std::max(best_speedup, speedup);
    if (widths[w] == 8) speedup_b8 = speedup;
    batch_table.add_row({"batch B=" + std::to_string(widths[w]),
                         TablePrinter::fmt(rate, 0),
                         TablePrinter::fmt(speedup, 2) + "x",
                         std::to_string(width_frames[w].count_sum())});
    json.begin_row();
    json.field("section", "batch_kernel");
    json.field("batch", static_cast<double>(widths[w]));
    json.field("samples_per_sec_rate", rate);
    json.field("speedup_vs_scalar", speedup);
    json.field("count_sum", static_cast<double>(width_frames[w].count_sum()));
  }
  batch_table.print();
  std::printf("\nbatch=1 bitwise identical to scalar: %s; tau accounting: "
              "%s\n(fused two-side visit records + folded intersection + "
              "cached frontier volumes\n- same algorithm, leaner memory "
              "traffic; see graph/batched_bidirectional_bfs.hpp)\n",
              identical_b1 ? "YES" : "NO", tau_ok ? "exact" : "BROKEN");

  json.summary("scalar_rate", scalar_rate);
  json.summary("speedup_b8_rate", speedup_b8);
  json.summary("best_speedup_rate", best_speedup);
  json.summary("batch_samples", static_cast<double>(batch_samples));
  json.summary("batch_count_sum",
               static_cast<double>(scalar_frame.count_sum()));
  json.summary("batch1_bitwise_identical", identical_b1 ? 1.0 : 0.0);
  json.summary("batch_tau_ok", tau_ok ? 1.0 : 0.0);
  json.write();
  return 0;
}
