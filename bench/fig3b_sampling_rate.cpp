// Reproduces Figure 3b: sampling throughput normalized by machine size -
// samples / (ADS time * P) - across the node sweep. A flat curve means the
// adaptive sampling phase scales linearly: almost all communication is
// hidden behind sampling.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.finish("Figure 3b: sampling rate.");
  bench::print_preamble(
      "Figure 3b - samples/(time * P) during adaptive sampling",
      "paper Fig. 3b (flat curve = linear sampling scalability)", config);

  const auto ranks = bench::rank_sweep(config);
  std::vector<std::vector<double>> rates(ranks.size());

  TablePrinter table({"instance", "P=1", "P=2", "P=4", "P=8", "P=16"});
  for (const auto& spec : config.suite()) {
    const auto graph = spec.build(config.scale, config.seed);
    std::vector<std::string> row{spec.name};
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const bc::KadabraOptions options =
          bench::bench_mpi_options(spec, config);
      const bc::BcResult result = bc::kadabra_mpi(
          graph, options, ranks[i], /*ranks_per_node=*/1,
          bench::bench_network(config));
      const double rate =
          result.adaptive_seconds > 0
              ? static_cast<double>(result.samples_attempted) /
                    (result.adaptive_seconds * ranks[i])
              : 0.0;
      rates[i].push_back(rate);
      row.push_back(TablePrinter::fmt(rate, 0));
    }
    while (row.size() < 6) row.push_back("-");
    table.add_row(row);
  }
  table.print();

  std::printf("\nGeometric-mean samples/(s * P):\n");
  TablePrinter summary({"# compute nodes", "samples/(s*P)"});
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    summary.add_row({std::to_string(ranks[i]),
                     TablePrinter::fmt(bench::geometric_mean(rates[i]), 0)});
  }
  summary.print();
  std::printf("\nPaper shape: the normalized rate stays flat across P "
              "(600-1000 samples/(s*node)\non their hardware; absolute "
              "values differ on this substrate).\n");
  return 0;
}
