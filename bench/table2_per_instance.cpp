// Reproduces Table II: per-instance statistics of the epoch-based MPI
// algorithm on 16 compute nodes - epochs, samples at termination, seconds
// spent in the non-blocking IBARRIER, communication volume per epoch, and
// adaptive-sampling time.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.finish("Table II: per-instance statistics.");
  bench::print_preamble("Table II - per-instance statistics at P=16",
                        "paper Table II", config);

  const int p = static_cast<int>(config.options.get_u64("ranks", 16));
  TablePrinter table({"instance", "Ep.", "Samples", "B (s)", "Com./ep.",
                      "ADS time (s)"});
  for (const auto& spec : config.suite()) {
    const auto graph = spec.build(config.scale, config.seed);
    const bc::KadabraOptions options =
        bench::bench_mpi_options(spec, config);
    const bc::BcResult result = bc::kadabra_mpi(
        graph, options, p, /*ranks_per_node=*/1, bench::bench_network(config));
    const double volume_per_epoch =
        result.epochs > 0
            ? static_cast<double>(result.comm_bytes) / result.epochs
            : 0.0;
    table.add_row({spec.name, TablePrinter::fmt_int(
                                  static_cast<long long>(result.epochs)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(result.samples)),
                   TablePrinter::fmt(result.phases.seconds(Phase::kBarrier),
                                     3),
                   TablePrinter::fmt_bytes(volume_per_epoch),
                   TablePrinter::fmt(result.adaptive_seconds, 2)});
  }
  table.print();
  std::printf(
      "\nPaper shape: road instances need the most samples/epochs but the "
      "least\ncommunication per epoch (small |V|); the largest instances "
      "finish in a\nhandful of epochs with the largest per-epoch volumes.\n");
  return 0;
}
