// Ablation: vertex relabeling for cache locality - the single-address-space
// analogue of the paper's §IV-E NUMA-placement concern (the 20-30% win of
// binding the graph close to the cores that scan it). Measures sampler
// throughput on the original labeling vs. degree-sorted vs. BFS-ordered.
#include "bc/sampler.hpp"
#include "bench_common.hpp"
#include "epoch/state_frame.hpp"
#include "graph/reorder.hpp"
#include "support/timer.hpp"

namespace {

double sample_rate(const distbc::graph::Graph& graph, std::uint64_t samples,
                   std::uint64_t seed) {
  using namespace distbc;
  bc::PathSampler sampler(graph, Rng(seed));
  epoch::StateFrame frame(graph.num_vertices());
  // Warm-up: fault in the adjacency arrays.
  for (std::uint64_t i = 0; i < samples / 10; ++i) sampler.sample(frame);
  WallTimer timer;
  for (std::uint64_t i = 0; i < samples; ++i) sampler.sample(frame);
  return static_cast<double>(samples) / timer.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("samples", "fixed sample count per run");
  config.options.describe("instance", "proxy instance to run");
  config.finish("Vertex-reordering ablation.");
  bench::print_preamble("Ablation - vertex relabeling (locality)",
                        "analogue of paper §IV-E (memory placement)",
                        config);
  const std::uint64_t samples = config.options.get_u64("samples", 20000);

  TablePrinter table({"instance", "original (samples/s)", "degree-sorted",
                      "bfs-ordered", "best vs original"});
  for (const auto& spec : config.suite()) {
    const auto graph = spec.build(config.scale, config.seed);
    const double original = sample_rate(graph, samples, config.seed);
    const auto by_degree = graph::sort_by_degree(graph);
    const double degree_rate =
        sample_rate(by_degree.graph, samples, config.seed);
    const auto by_bfs = graph::sort_by_bfs(graph);
    const double bfs_rate = sample_rate(by_bfs.graph, samples, config.seed);
    const double best = std::max({original, degree_rate, bfs_rate});
    table.add_row({spec.name, TablePrinter::fmt(original, 0),
                   TablePrinter::fmt(degree_rate, 0),
                   TablePrinter::fmt(bfs_rate, 0),
                   TablePrinter::fmt_ratio(best / original)});
  }
  table.print();
  std::printf(
      "\nHeavy-tailed graphs benefit from packing hubs into a dense id "
      "prefix\n(every sample touches them); road networks prefer BFS order "
      "(spatial\nneighborhoods become contiguous). At paper scale the same "
      "effect is what\nmade one-process-per-NUMA-socket placement worth "
      "20-30%%.\n");
  return 0;
}
