// Reproduces Figure 3a: per-phase speedup of the MPI algorithm over the
// shared-memory baseline - adaptive sampling (ADS) and calibration
// separately.
//
// Expected shape: ADS scales nearly linearly to P = 16 (the paper reports
// 16.1x); calibration scales well at first (its sampling part is pleasingly
// parallel) but flattens earlier because its per-vertex optimization is
// sequential at rank 0.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.finish("Figure 3a: per-phase speedup.");
  bench::print_preamble("Figure 3a - per-phase speedup (ADS, calibration)",
                        "paper Fig. 3a", config);

  const auto ranks = bench::rank_sweep(config);
  std::vector<std::vector<double>> ads_speedups(ranks.size());
  std::vector<std::vector<double>> calib_speedups(ranks.size());

  for (const auto& spec : config.suite()) {
    const auto graph = spec.build(config.scale, config.seed);
    const bc::KadabraOptions shm = bench::bench_shm_options(spec, config);
    const bc::BcResult baseline = kadabra_shm(graph, shm);
    const double base_ads = baseline.adaptive_seconds;
    const double base_calib = baseline.phases.seconds(Phase::kCalibration);

    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const bc::KadabraOptions mpi = bench::bench_mpi_options(spec, config);
      const bc::BcResult result = bc::kadabra_mpi(
          graph, mpi, ranks[i], /*ranks_per_node=*/1, bench::bench_network(config));
      if (result.adaptive_seconds > 0)
        ads_speedups[i].push_back(base_ads / result.adaptive_seconds);
      const double calib = result.phases.seconds(Phase::kCalibration);
      if (calib > 0) calib_speedups[i].push_back(base_calib / calib);
    }
  }

  TablePrinter table({"# compute nodes", "ADS speedup", "calib. speedup"});
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    table.add_row({std::to_string(ranks[i]),
                   TablePrinter::fmt_ratio(
                       bench::geometric_mean(ads_speedups[i])),
                   TablePrinter::fmt_ratio(
                       bench::geometric_mean(calib_speedups[i]))});
  }
  table.print();
  std::printf("\nPaper: ADS reaches ~16x at 16 nodes; calibration lags due "
              "to its sequential part.\n");
  return 0;
}
