// Ablation for paper §IV-F: the aggregation strategy. The paper found that
// MPI_Ireduce progresses poorly, that a non-blocking barrier followed by a
// blocking reduce is considerably faster, and that a fully blocking
// approach is "again detrimental". This bench compares all three under the
// same interconnect model.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("instance", "proxy instance to run");
  config.finish("SIV-F ablation: aggregation strategies.");
  bench::print_preamble("Ablation - aggregation strategy",
                        "paper §IV-F (Ibarrier+Reduce vs Ireduce vs "
                        "blocking)",
                        config);
  bench::JsonReport json("ablation_reduce_strategy", config);

  const auto& spec = gen::instance_by_name(
      config.options.get_string("instance", "twitter-proxy"));
  json.param("instance", spec.name);
  const auto graph = spec.build(config.scale, config.seed);
  std::printf("instance=%s |V|=%u\n\n", spec.name.c_str(),
              graph.num_vertices());

  struct Strategy {
    const char* name;
    bc::Aggregation aggregation;
  };
  const Strategy strategies[] = {
      {"ibarrier+reduce", bc::Aggregation::kIbarrierReduce},
      {"ireduce", bc::Aggregation::kIreduce},
      {"blocking", bc::Aggregation::kBlocking}};

  TablePrinter table({"strategy", "P", "epochs", "ADS (s)", "ibarrier (s)",
                      "reduce (s)", "samples/(s*P)"});
  for (const int p : {4, 16}) {
    for (const Strategy& strategy : strategies) {
      bc::KadabraOptions options = bench::bench_mpi_options(spec, config);
      options.engine.aggregation = strategy.aggregation;
      // Shorter epochs than the shared bench default: the per-epoch
      // aggregation is the object of study here, so give it weight.
      options.engine.epoch_base = config.options.get_u64("n0base", 20);
      const bc::BcResult result = bc::kadabra_mpi(
          graph, options, p, 1, bench::bench_network(config, 500.0));
      const double rate =
          result.adaptive_seconds > 0
              ? static_cast<double>(result.samples_attempted) /
                    (result.adaptive_seconds * p)
              : 0.0;
      table.add_row(
          {strategy.name, std::to_string(p),
           TablePrinter::fmt_int(static_cast<long long>(result.epochs)),
           TablePrinter::fmt(result.adaptive_seconds, 3),
           TablePrinter::fmt(result.phases.seconds(Phase::kBarrier), 3),
           TablePrinter::fmt(result.phases.seconds(Phase::kReduction), 3),
           TablePrinter::fmt(rate, 0)});
      json.begin_row();
      json.field("strategy", strategy.name);
      json.field("ranks", static_cast<double>(p));
      json.field("epochs", static_cast<double>(result.epochs));
      json.field("adaptive_seconds", result.adaptive_seconds);
      json.field("samples_per_rank_second", rate);
    }
  }
  table.print();
  json.write();
  std::printf("\nPaper finding: overlapped strategies keep the sampling "
              "rate flat; the fully\nblocking variant loses throughput as P "
              "grows because nothing hides the\naggregation latency.\n");
  return 0;
}
