// Ablation for the frame-representation layer: on a large-V / short-epoch
// shape - the regime the sparse delta frames exist for - run KADABRA under
// every frame representation x §IV-F aggregation strategy x §IV-E
// hierarchy and compare the modeled aggregation bytes. Acceptance:
//   * sparse moves >= 5x fewer aggregation bytes than dense,
//   * auto never moves more than the worse fixed representation,
//   * deterministic-mode scores are bitwise identical across every
//     representation x strategy x hierarchy combination.
// The --json object (BENCH_comm_volume.json in CI) carries the
// per-collective byte breakdown of every configuration.
#include <string>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/components.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("vertices", "graph size (large V is the point)");
  config.options.describe("eps", "betweenness epsilon");
  config.options.describe("n0", "fixed total epoch length (short epochs)");
  config.finish("Frame representations: sparse delta frames vs dense.");
  bench::print_preamble(
      "Ablation - frame representation (dense | sparse | auto)",
      "frame layer over paper §III-B/§IV-E/F; bytes ~ samples, not |V|",
      config);
  bench::JsonReport json("ablation_frame_rep", config);

  const auto vertices = static_cast<std::uint32_t>(
      config.options.get_u64("vertices", 40000));
  const double eps = config.options.get_double("eps", 0.1);
  const auto n0 = config.options.get_u64("n0", 16);
  const graph::Graph graph = graph::largest_component(
      gen::erdos_renyi(vertices, 3 * vertices, config.seed));
  std::printf("instance: Erdos-Renyi |V|=%u |E|=%llu, eps=%.3g, n0=%llu\n\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              eps, static_cast<unsigned long long>(n0));
  json.param("vertices", static_cast<double>(graph.num_vertices()));
  json.param("n0", static_cast<double>(n0));

  constexpr int kRanks = 4;
  struct Strategy {
    const char* name;
    bc::Aggregation aggregation;
  };
  const Strategy strategies[] = {
      {"ibarrier+reduce", bc::Aggregation::kIbarrierReduce},
      {"ireduce", bc::Aggregation::kIreduce},
      {"blocking", bc::Aggregation::kBlocking}};
  const bc::FrameRep reps[] = {bc::FrameRep::kDense, bc::FrameRep::kSparse,
                               bc::FrameRep::kAuto};

  const auto run = [&](bc::FrameRep rep, const Strategy& strategy,
                       bool hierarchical) {
    bc::KadabraOptions options;
    options.params.epsilon = eps;
    options.params.seed = config.seed;
    // 2-approximate diameter: the exact iFUB pass costs minutes at this
    // |V| and the ablation only compares bytes between configurations.
    options.params.exact_diameter = false;
    options.engine.threads_per_rank = 1;
    // Deterministic mode pins the sample set, so every configuration
    // aggregates the same frames and byte counts are comparable.
    options.engine.deterministic = true;
    options.engine.virtual_streams = 4;
    options.engine.epoch_base = n0;
    options.engine.epoch_exponent = 0.0;  // n0 fixed: short epochs
    options.engine.frame_rep = rep;
    options.engine.aggregation = strategy.aggregation;
    options.engine.hierarchical = hierarchical;
    return bc::kadabra_mpi(graph, options, kRanks,
                           hierarchical ? 2 : 1,
                           mpisim::NetworkModel::disabled());
  };

  TablePrinter table({"rep", "strategy", "hier", "epochs", "agg bytes",
                      "reduce", "merge", "window"});
  bool bitwise_identical = true;
  bool auto_never_worse = true;
  std::uint64_t flat_bytes[3] = {0, 0, 0};  // per rep, ibarrier+flat
  const bc::BcResult baseline =
      run(bc::FrameRep::kDense, strategies[0], false);

  for (const bool hierarchical : {false, true}) {
    for (const Strategy& strategy : strategies) {
      std::uint64_t rep_bytes[3] = {0, 0, 0};
      for (int r = 0; r < 3; ++r) {
        const bc::BcResult result = run(reps[r], strategy, hierarchical);
        const mpisim::CommVolume& volume = result.comm_volume;
        rep_bytes[r] = volume.aggregation_bytes();
        if (!hierarchical && strategy.aggregation ==
                                 bc::Aggregation::kIbarrierReduce)
          flat_bytes[r] = rep_bytes[r];

        // Bitwise equality against the baseline configuration.
        if (result.samples != baseline.samples ||
            result.scores.size() != baseline.scores.size())
          bitwise_identical = false;
        for (std::size_t v = 0; v < result.scores.size(); ++v)
          if (result.scores[v] != baseline.scores[v]) {
            bitwise_identical = false;
            break;
          }

        table.add_row(
            {epoch::frame_rep_name(reps[r]), strategy.name,
             hierarchical ? "on" : "off",
             TablePrinter::fmt_int(static_cast<long long>(result.epochs)),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.aggregation_bytes())),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.reduce_bytes)),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.reduce_merge_bytes)),
             TablePrinter::fmt_int(
                 static_cast<long long>(volume.p2p_bytes))});
        json.begin_row();
        json.field("rep", epoch::frame_rep_name(reps[r]));
        json.field("strategy", strategy.name);
        json.field("hierarchical", hierarchical ? 1.0 : 0.0);
        json.field("epochs", static_cast<double>(result.epochs));
        json.field("samples", static_cast<double>(result.samples));
        bench::add_comm_volume_fields(json, volume);
      }
      // Auto must not exceed the worse fixed representation (5% slack for
      // the tag/header words on degenerate shapes).
      const std::uint64_t worse = std::max(rep_bytes[0], rep_bytes[1]);
      if (rep_bytes[2] > worse + worse / 20) auto_never_worse = false;
    }
  }
  table.print();

  const double ratio =
      flat_bytes[1] > 0 ? static_cast<double>(flat_bytes[0]) /
                              static_cast<double>(flat_bytes[1])
                        : 0.0;
  std::printf("\ndense/sparse aggregation bytes (ibarrier+reduce, flat): "
              "%llu / %llu = %.1fx\n",
              static_cast<unsigned long long>(flat_bytes[0]),
              static_cast<unsigned long long>(flat_bytes[1]), ratio);
  const bool sparse_wins_5x = ratio >= 5.0;
  std::printf("check: sparse moves >= 5x fewer aggregation bytes: %s\n",
              sparse_wins_5x ? "PASS" : "FAIL");
  std::printf("check: auto never worse than the worse fixed rep: %s\n",
              auto_never_worse ? "PASS" : "FAIL");
  std::printf("check: bitwise-identical deterministic results: %s\n",
              bitwise_identical ? "PASS" : "FAIL");
  json.summary("dense_bytes", static_cast<double>(flat_bytes[0]));
  json.summary("sparse_bytes", static_cast<double>(flat_bytes[1]));
  json.summary("auto_bytes", static_cast<double>(flat_bytes[2]));
  json.summary("dense_over_sparse", ratio);
  json.summary("sparse_wins_5x", sparse_wins_5x ? 1.0 : 0.0);
  json.summary("auto_never_worse", auto_never_worse ? 1.0 : 0.0);
  json.summary("bitwise_identical", bitwise_identical ? 1.0 : 0.0);
  json.write();
  return sparse_wins_5x && auto_never_worse && bitwise_identical ? 0 : 1;
}
