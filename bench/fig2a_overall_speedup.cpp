// Reproduces Figure 2a: overall speedup of the epoch-based MPI algorithm
// over the state-of-the-art shared-memory algorithm (Ref. [24]), as a
// function of the number of compute nodes.
//
// Substitution note: the paper's "one compute node" is a 24-core machine;
// here one simulated node is one rank with one sampler thread and the
// shared-memory baseline runs single-threaded, so the speedup axis has the
// same meaning (resources grow linearly with P, baseline holds one node's
// worth). Expected shape: near-linear speedup through P = 8, flattening at
// 16 as the sequential diameter/calibration phases gain weight (Amdahl).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.finish("Figure 2a: epoch-based MPI speedup over shared memory.");
  bench::print_preamble("Figure 2a - overall speedup vs shared memory",
                        "paper Fig. 2a (geom. mean over the Table I suite)",
                        config);
  bench::JsonReport json("fig2a_overall_speedup", config);

  const auto ranks = bench::rank_sweep(config);
  std::vector<std::vector<double>> speedups(ranks.size());

  TablePrinter table({"instance", "baseline shm (s)", "P=1", "P=2", "P=4",
                      "P=8", "P=16"});
  for (const auto& spec : config.suite()) {
    const auto graph = spec.build(config.scale, config.seed);
    const bc::KadabraOptions shm = bench::bench_shm_options(spec, config);
    const bc::BcResult baseline = kadabra_shm(graph, shm);

    std::vector<std::string> row{spec.name,
                                 TablePrinter::fmt(baseline.total_seconds, 2)};
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const bc::KadabraOptions mpi = bench::bench_mpi_options(spec, config);
      const bc::BcResult result = bc::kadabra_mpi(
          graph, mpi, ranks[i], /*ranks_per_node=*/1, bench::bench_network(config));
      const double speedup = baseline.total_seconds / result.total_seconds;
      speedups[i].push_back(speedup);
      row.push_back(TablePrinter::fmt_ratio(speedup));
      json.begin_row();
      json.field("instance", spec.name);
      json.field("ranks", static_cast<double>(ranks[i]));
      json.field("baseline_seconds", baseline.total_seconds);
      json.field("seconds", result.total_seconds);
      json.field("speedup", speedup);
    }
    while (row.size() < 7) row.push_back("-");
    table.add_row(row);
  }
  table.print();

  std::printf("\nGeometric-mean overall speedup (paper: 7.4x at P=16):\n");
  TablePrinter summary({"# compute nodes", "speedup"});
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const double mean = bench::geometric_mean(speedups[i]);
    summary.add_row({std::to_string(ranks[i]), TablePrinter::fmt_ratio(mean)});
    json.summary("speedup_p" + std::to_string(ranks[i]), mean);
  }
  summary.print();
  json.write();
  return 0;
}
