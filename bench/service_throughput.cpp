// Service-tier headline: multi-tenant query throughput over pooled
// sessions (src/service/). Replays one mixed trace - three graphs, three
// tenants, betweenness/closeness/mean-distance queries - two ways:
//
//   serial  : one api::Session per graph, queries in submission order -
//             the no-service baseline;
//   pooled  : service::Dispatcher over SessionPools (pool= replicas per
//             graph), trace submitted as a paused backlog and released at
//             once - weighted fair scheduling decides the order.
//
// The pool's win on this simulated-MPI substrate is overlap: ranks blocked
// in modeled collectives sleep on the real clock (latency_us= scales how
// long), and the pool runs other queries' sampling under those sleeps.
// Reported: QPS both ways, the pooled/serial speedup, and per-tenant
// latency percentiles + the fair scheduler's dispatch shares.
//
// --json / out= emit the snapshot ci/compare_bench.py gates: wall-clock
// fields are named *seconds/*per_sec/*speedup (skipped as machine-load
// dependent); the gated fields are deterministic - bitwise identity of
// pooled vs serial results, sample/epoch counters, warm-store save/load
// counts, the zero-recalibration restart check, and the fair-scheduler
// dispatch shares (exact under backlog).
#include "bench_common.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/session.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/components.hpp"
#include "service/dispatcher.hpp"
#include "service/scheduler.hpp"
#include "service/session_pool.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace distbc;

struct TraceEntry {
  std::string tenant;
  std::string graph_id;
  api::Query query;
};

struct Tenant {
  const char* name;
  double weight;
};

constexpr Tenant kTenants[] = {
    {"analytics", 2.0}, {"batch", 1.0}, {"alerts", 1.0}};

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

bool results_identical(const api::Result& a, const api::Result& b) {
  if (a.scores.size() != b.scores.size()) return false;
  for (std::size_t v = 0; v < a.scores.size(); ++v)
    if (a.scores[v] != b.scores[v]) return false;
  return a.top_k == b.top_k && a.mean == b.mean && a.stddev == b.stddev &&
         a.samples == b.samples && a.algorithm == b.algorithm;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config(argc, argv);
  const int pool_size = static_cast<int>(
      config.options.get_u64("pool", 2, "session replicas per graph"));
  const std::uint64_t rounds = config.options.get_u64(
      "rounds", 1, "trace repetitions per (graph, tenant)");
  config.finish("Service tier: multi-tenant QPS over pooled sessions.");
  bench::print_preamble(
      "service_throughput - multi-tenant QPS over pooled sessions",
      "service tier over the paper's KADABRA driver (not a paper figure)",
      config);
  bench::JsonReport json("service_throughput", config);

  // Blocked-in-collective ranks sleep on the real clock; a visible
  // inter-node latency is what gives the pool sleeps to overlap.
  mpisim::NetworkModel network;
  network.remote_latency_s =
      config.options.get_double("latency_us", 200.0) * 1e-6;
  network.dedicated_cores = false;

  // --- Bound graphs: three small proxies with distinct topology ----------
  gen::RmatParams rmat_params;
  rmat_params.scale = 8;
  rmat_params.edge_factor = 8.0;
  gen::RoadParams road_params;
  road_params.width = 24;
  road_params.height = 10;
  std::vector<std::pair<std::string, std::shared_ptr<const graph::Graph>>>
      graphs;
  graphs.emplace_back("social", std::make_shared<const graph::Graph>(
                                    graph::largest_component(
                                        gen::rmat(rmat_params, config.seed))));
  graphs.emplace_back(
      "random", std::make_shared<const graph::Graph>(graph::largest_component(
                    gen::erdos_renyi(220, 660, config.seed + 1))));
  graphs.emplace_back(
      "road", std::make_shared<const graph::Graph>(graph::largest_component(
                  gen::road(road_params, config.seed + 2))));

  api::Config base;
  base.ranks = 2;
  base.threads = 1;
  base.deterministic = true;
  base.virtual_streams = 4;
  base.epoch_base = bench::bench_epoch_base(config);
  base.epoch_exponent = 0.0;
  base.seed = config.seed;
  base.frame_rep = epoch::FrameRep::kAuto;
  base.network = network;
  base.service_pool_size = pool_size;
  base.service_queue_capacity = 1024;

  // --- The trace: per (round, graph, tenant) one 4-query burst -----------
  std::vector<TraceEntry> trace;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (const auto& [graph_id, graph] : graphs) {
      for (const Tenant& tenant : kTenants) {
        api::BetweennessQuery bc1;
        bc1.epsilon = 0.05;
        api::BetweennessQuery bc2;
        bc2.epsilon = 0.08;
        bc2.top_k = 5;
        api::ClosenessRankQuery closeness;
        closeness.epsilon = 0.1;
        api::MeanDistanceQuery mean;
        mean.epsilon = 0.2;
        trace.push_back({tenant.name, graph_id, api::Query(bc1)});
        trace.push_back({tenant.name, graph_id, api::Query(bc2)});
        trace.push_back({tenant.name, graph_id, api::Query(closeness)});
        trace.push_back({tenant.name, graph_id, api::Query(mean)});
      }
    }
  }
  json.param("pool", static_cast<double>(pool_size));
  json.param("latency_us", network.remote_latency_s * 1e6);
  json.param("rounds", static_cast<double>(rounds));
  json.param("trace_queries", static_cast<double>(trace.size()));

  // --- Serial arm: one session per graph, submission order ---------------
  std::map<std::string, std::unique_ptr<api::Session>> sessions;
  for (const auto& [graph_id, graph] : graphs)
    sessions.emplace(graph_id, std::make_unique<api::Session>(graph, base));
  const WallTimer serial_timer;
  std::vector<api::Result> serial_results;
  serial_results.reserve(trace.size());
  for (const TraceEntry& entry : trace)
    serial_results.push_back(sessions.at(entry.graph_id)->run(entry.query));
  const double serial_seconds = serial_timer.elapsed_s();

  // --- Pooled arm: paused backlog, released at once ----------------------
  service::Dispatcher dispatcher;
  for (const auto& [graph_id, graph] : graphs) {
    const api::Status bound = dispatcher.bind(graph_id, graph, base);
    if (!bound.ok) {
      std::fprintf(stderr, "bind(%s): %s\n", graph_id.c_str(),
                   bound.message.c_str());
      return 1;
    }
  }
  for (const Tenant& tenant : kTenants)
    dispatcher.set_tenant_weight(tenant.name, tenant.weight);

  dispatcher.pause();
  std::vector<service::Ticket> tickets;
  tickets.reserve(trace.size());
  for (const TraceEntry& entry : trace)
    tickets.push_back(
        dispatcher.submit({entry.tenant, entry.graph_id, entry.query}));
  const WallTimer pool_timer;
  dispatcher.resume();
  dispatcher.drain();
  const double pool_seconds = pool_timer.elapsed_s();

  // --- Verify: pooled answers bitwise equal the serial ones --------------
  bool identical = true;
  std::uint64_t bc_samples = 0;
  std::uint64_t bc_epochs = 0;
  std::map<std::string, std::vector<double>> tenant_latencies;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const service::Response& response = tickets[i].wait();
    if (!response.status.ok || !serial_results[i].status.ok ||
        !results_identical(response.result, serial_results[i]))
      identical = false;
    if (std::holds_alternative<api::BetweennessQuery>(trace[i].query)) {
      bc_samples += response.result.samples;
      bc_epochs += response.result.epochs;
    }
    tenant_latencies[response.tenant].push_back(response.queue_seconds +
                                                response.run_seconds);
  }
  const service::DispatcherStats dispatcher_stats = dispatcher.stats();

  // --- Fair-scheduler replay: exact dispatch shares under backlog --------
  service::FairScheduler scheduler;
  for (const Tenant& tenant : kTenants)
    scheduler.set_weight(tenant.name, tenant.weight);
  for (std::size_t i = 0; i < trace.size(); ++i)
    scheduler.push(trace[i].tenant, trace[i].graph_id, i);
  std::vector<std::string> dispatch_order;
  while (scheduler.pending() > 0) {
    for (const auto& [graph_id, graph] : graphs) {
      const auto handle = scheduler.pop(graph_id);
      if (handle.has_value())
        dispatch_order.push_back(trace[*handle].tenant);
    }
  }
  // Share of the weight-2 tenant in the first half of the dispatch order;
  // its fair share is 2/4 = 0.5, so the ratio's baseline sits near 1.
  const std::size_t half = dispatch_order.size() / 2;
  std::size_t analytics_first_half = 0;
  for (std::size_t i = 0; i < half; ++i)
    if (dispatch_order[i] == "analytics") ++analytics_first_half;
  const double fairness_share_ratio =
      half == 0 ? 0.0
                : (static_cast<double>(analytics_first_half) /
                   static_cast<double>(half)) /
                      0.5;

  // --- Restart arm: warm store -> zero recalibration ---------------------
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "distbc_service_bench_store")
          .string();
  std::filesystem::remove_all(store_dir);
  api::Config stored = base;
  stored.service_warm_store = store_dir;
  std::uint64_t store_saves = 0;
  std::uint64_t store_loaded = 0;
  bool restart_zero_calibration = true;
  for (const auto& [graph_id, graph] : graphs) {
    api::BetweennessQuery bc1;
    bc1.epsilon = 0.05;
    api::BetweennessQuery bc2;
    bc2.epsilon = 0.08;
    bc2.top_k = 5;
    {
      service::SessionPool cold(graph, stored);
      (void)cold.submit(api::Query(bc1));
      (void)cold.submit(api::Query(bc2));
      cold.drain();
      store_saves += cold.stats().store_saves;
    }  // simulated shutdown
    service::SessionPool warm(graph, stored);
    store_loaded += warm.stats().store_states_loaded;
    for (const api::Query& query :
         {api::Query(bc1), api::Query(bc2)}) {
      const service::Ticket ticket = warm.submit(query);
      warm.drain();
      const service::Response& response = ticket.wait();
      if (!response.status.ok || !response.result.calibration_reused ||
          response.result.phases.seconds(Phase::kDiameter) != 0.0 ||
          response.result.phases.seconds(Phase::kCalibration) != 0.0)
        restart_zero_calibration = false;
    }
  }
  std::filesystem::remove_all(store_dir);

  // --- Report ------------------------------------------------------------
  const double serial_qps =
      serial_seconds > 0 ? static_cast<double>(trace.size()) / serial_seconds
                         : 0.0;
  const double pool_qps =
      pool_seconds > 0 ? static_cast<double>(trace.size()) / pool_seconds
                       : 0.0;
  const double speedup = serial_seconds > 0 && pool_seconds > 0
                             ? serial_seconds / pool_seconds
                             : 0.0;

  TablePrinter arms({"arm", "queries", "seconds", "qps"});
  arms.add_row({"serial", std::to_string(trace.size()),
                TablePrinter::fmt(serial_seconds, 3),
                TablePrinter::fmt(serial_qps, 1)});
  arms.add_row({"pooled", std::to_string(trace.size()),
                TablePrinter::fmt(pool_seconds, 3),
                TablePrinter::fmt(pool_qps, 1)});
  arms.print();
  std::printf("\npooled/serial speedup: %.2fx (pool=%d)\n", speedup,
              pool_size);
  std::printf("pooled results bitwise identical to serial: %s\n",
              identical ? "yes" : "NO");
  std::printf("restart with warm store skips calibration: %s\n\n",
              restart_zero_calibration ? "yes" : "NO");

  TablePrinter tenants({"tenant", "weight", "queries", "p50 ms", "p95 ms"});
  for (const Tenant& tenant : kTenants) {
    std::vector<double>& latencies = tenant_latencies[tenant.name];
    tenants.add_row({tenant.name, TablePrinter::fmt(tenant.weight, 1),
                     std::to_string(latencies.size()),
                     TablePrinter::fmt(percentile(latencies, 0.5) * 1e3, 2),
                     TablePrinter::fmt(percentile(latencies, 0.95) * 1e3, 2)});
    json.begin_row();
    json.field("tenant", tenant.name);
    json.field("weight", tenant.weight);
    json.field("queries", static_cast<double>(latencies.size()));
    json.field("p50_latency_seconds", percentile(latencies, 0.5));
    json.field("p95_latency_seconds", percentile(latencies, 0.95));
  }
  tenants.print();
  std::printf("\nfair-scheduler first-half share ratio (analytics): %.3f\n",
              fairness_share_ratio);

  json.summary("queries_total", static_cast<double>(trace.size()));
  json.summary("queries_rejected",
               static_cast<double>(dispatcher_stats.rejected_queue_full +
                                   dispatcher_stats.rejected_unknown_graph));
  json.summary("pool_serial_identical", identical ? 1.0 : 0.0);
  json.summary("restart_zero_calibration_ok",
               restart_zero_calibration ? 1.0 : 0.0);
  json.summary("warm_store_saves", static_cast<double>(store_saves));
  json.summary("warm_store_states_loaded", static_cast<double>(store_loaded));
  json.summary("bc_samples_total", static_cast<double>(bc_samples));
  json.summary("bc_epochs_total", static_cast<double>(bc_epochs));
  json.summary("fairness_share_ratio", fairness_share_ratio);
  json.summary("serial_queries_per_sec", serial_qps);
  json.summary("pool_queries_per_sec", pool_qps);
  json.summary("pool_speedup", speedup);
  json.write();
  return identical && restart_zero_calibration ? 0 : 1;
}
