// google-benchmark microbenchmarks for the substrates: BFS kernels,
// bidirectional vs unidirectional search, one KADABRA sample, epoch
// transitions, state-frame aggregation, and simulated reductions.
#include <benchmark/benchmark.h>

#include "bc/kadabra_context.hpp"
#include "bc/sampler.hpp"
#include "epoch/epoch_manager.hpp"
#include "epoch/state_frame.hpp"
#include "gen/hyperbolic.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/bfs.hpp"
#include "graph/bidirectional_bfs.hpp"
#include "graph/components.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace distbc;

const graph::Graph& social_graph() {
  static const graph::Graph graph = [] {
    gen::RmatParams params;
    params.scale = 14;
    params.edge_factor = 16.0;
    return graph::largest_component(gen::rmat(params, 1));
  }();
  return graph;
}

const graph::Graph& road_graph() {
  static const graph::Graph graph = [] {
    gen::RoadParams params;
    params.width = 200;
    params.height = 80;
    return gen::road(params, 2);
  }();
  return graph;
}

void BM_BfsSocial(benchmark::State& state) {
  const auto& graph = social_graph();
  graph::BfsWorkspace ws(graph.num_vertices());
  Rng rng(7);
  for (auto _ : state) {
    const auto source =
        static_cast<graph::Vertex>(rng.next_bounded(graph.num_vertices()));
    benchmark::DoNotOptimize(graph::bfs(graph, source, ws));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BfsSocial);

void BM_BidirectionalVsFullBfs(benchmark::State& state) {
  // One bidirectional pair query; compare items/s against BM_BfsSocial to
  // see the asymptotic win KADABRA's sampler relies on.
  const auto& graph = social_graph();
  graph::BidirectionalBfs bfs(graph.num_vertices());
  Rng rng(8);
  for (auto _ : state) {
    const auto [s, t] = rng.next_distinct_pair(graph.num_vertices());
    benchmark::DoNotOptimize(bfs.run(graph, static_cast<graph::Vertex>(s),
                                     static_cast<graph::Vertex>(t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BidirectionalVsFullBfs);

void BM_SampleSocial(benchmark::State& state) {
  const auto& graph = social_graph();
  bc::PathSampler sampler(graph, Rng(9));
  epoch::StateFrame frame(graph.num_vertices());
  for (auto _ : state) sampler.sample(frame);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleSocial);

void BM_SampleRoad(benchmark::State& state) {
  // Road samples are the expensive ones: high diameter, big BFS balls.
  const auto& graph = road_graph();
  bc::PathSampler sampler(graph, Rng(10));
  epoch::StateFrame frame(graph.num_vertices());
  for (auto _ : state) sampler.sample(frame);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleRoad);

void BM_EpochTransition(benchmark::State& state) {
  // Cost of force_transition + immediate completion with a single thread:
  // the overhead floor of the epoch mechanism.
  epoch::EpochManager<epoch::StateFrame> manager(1, epoch::StateFrame(1024));
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    manager.force_transition(epoch);
    benchmark::DoNotOptimize(manager.transition_done(epoch));
    ++epoch;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochTransition);

void BM_FrameMerge(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  epoch::StateFrame a(n);
  epoch::StateFrame b(n);
  b.record_empty();
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a.raw().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (n + 1) * sizeof(std::uint64_t));
}
BENCHMARK(BM_FrameMerge)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SimulatedReduce(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const int ranks = 8;
  mpisim::RuntimeConfig config;
  config.num_ranks = ranks;
  config.network = mpisim::NetworkModel::disabled();
  mpisim::Runtime runtime(config);
  for (auto _ : state) {
    runtime.run([&](mpisim::Comm& comm) {
      std::vector<std::uint64_t> send(count, 1);
      std::vector<std::uint64_t> recv(count, 0);
      comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          count * sizeof(std::uint64_t) * ranks);
}
BENCHMARK(BM_SimulatedReduce)->Arg(1 << 10)->Arg(1 << 16);

void BM_StopCheck(benchmark::State& state) {
  // O(|V|) stopping-condition evaluation, the per-epoch cost at rank 0.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  bc::KadabraParams params;
  params.epsilon = 0.01;
  bc::KadabraContext context = bc::begin_context(params, 16);
  epoch::StateFrame initial(n);
  for (int i = 0; i < 1000; ++i) initial.record_empty();
  bc::finish_calibration(context, initial);
  epoch::StateFrame aggregate(n);
  for (int i = 0; i < 5000; ++i) aggregate.record_empty();
  for (auto _ : state)
    benchmark::DoNotOptimize(context.stop_satisfied(aggregate));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_StopCheck)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
