// Ablation for paper §IV-D: the epoch-length rule n0 = 1000 (PT)^1.33.
// Sweeps the base constant and the exponent: too-short epochs check the
// stopping condition too often (communication dominates); too-long epochs
// overshoot the stopping point (wasted samples, late termination).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("instance", "proxy instance to run");
  config.finish("SIV-D ablation: epoch-length rules.");
  bench::print_preamble("Ablation - epoch length rule n0 = base*(PT)^exp",
                        "paper §IV-D", config);

  const int p = static_cast<int>(config.options.get_u64("ranks", 8));
  const auto& spec =
      gen::instance_by_name(config.options.get_string("instance",
                                                      "orkut-proxy"));
  const auto graph = spec.build(config.scale, config.seed);
  std::printf("instance=%s |V|=%u P=%d\n\n", spec.name.c_str(),
              graph.num_vertices(), p);

  struct Rule {
    std::uint64_t base;
    double exponent;
  };
  const Rule rules[] = {{10, 0.0},  {100, 0.0},  {1000, 0.0},
                        {10, 1.33}, {50, 1.33}, {250, 1.33}};

  TablePrinter table({"base", "exponent", "n0", "epochs", "samples (tau)",
                      "overshoot", "ADS (s)", "total (s)"});
  for (const Rule& rule : rules) {
    bc::KadabraOptions options = bench::bench_mpi_options(spec, config);
    options.engine.epoch_base = rule.base;
    options.engine.epoch_exponent = rule.exponent;
    const bc::BcResult result =
        bc::kadabra_mpi(graph, options, p, 1, bench::bench_network(config));
    const double overshoot =
        result.samples > 0 && result.epochs > 0
            ? static_cast<double>(result.samples) /
                  static_cast<double>(result.samples -
                                      result.samples / result.epochs)
            : 0.0;
    table.add_row(
        {std::to_string(rule.base), TablePrinter::fmt(rule.exponent, 2),
         TablePrinter::fmt_int(static_cast<long long>(
             engine::epoch_length(rule.base, rule.exponent, p))),
         TablePrinter::fmt_int(static_cast<long long>(result.epochs)),
         TablePrinter::fmt_int(static_cast<long long>(result.samples)),
         TablePrinter::fmt_ratio(overshoot),
         TablePrinter::fmt(result.adaptive_seconds, 3),
         TablePrinter::fmt(result.total_seconds, 3)});
  }
  table.print();
  std::printf("\n'overshoot' = tau / (tau - one epoch): how far past the "
              "earliest possible\nstopping point the final epoch ran. The "
              "paper's rule balances it against\nper-epoch communication "
              "cost.\n");
  return 0;
}
