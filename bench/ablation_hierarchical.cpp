// Ablation for paper §IV-E: launching multiple ranks per node ("one MPI
// process per NUMA socket") with node-local shared-memory pre-aggregation
// via an RMA window, so that only node leaders join the global reduction.
//
// On the paper's hardware the win is NUMA locality of the graph (20-30%);
// that part cannot be reproduced in one address space (DESIGN.md
// substitution #4). What *is* reproduced: the communication structure -
// hierarchical aggregation shrinks the global reduction from P to
// P/ranks_per_node participants at the cost of a local window pass.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("instance", "proxy instance to run");
  config.finish("SIV-E ablation: hierarchical pre-reduction.");
  bench::print_preamble("Ablation - hierarchical (per-node) aggregation",
                        "paper §IV-E", config);

  const auto& spec = gen::instance_by_name(
      config.options.get_string("instance", "orkut-proxy"));
  const auto graph = spec.build(config.scale, config.seed);
  const int p = static_cast<int>(config.options.get_u64("ranks", 16));
  std::printf("instance=%s |V|=%u P=%d\n\n", spec.name.c_str(),
              graph.num_vertices(), p);

  TablePrinter table({"ranks/node", "hierarchical", "epochs", "ADS (s)",
                      "reduce (s)", "comm volume"});
  struct Shape {
    int ranks_per_node;
    bool hierarchical;
  };
  const Shape shapes[] = {{1, false}, {2, false}, {2, true}, {4, true}};
  for (const Shape& shape : shapes) {
    bc::KadabraOptions options = bench::bench_mpi_options(spec, config);
    options.engine.hierarchical = shape.hierarchical;
    const bc::BcResult result = bc::kadabra_mpi(
        graph, options, p, shape.ranks_per_node, bench::bench_network(config));
    table.add_row(
        {std::to_string(shape.ranks_per_node),
         shape.hierarchical ? "yes" : "no",
         TablePrinter::fmt_int(static_cast<long long>(result.epochs)),
         TablePrinter::fmt(result.adaptive_seconds, 3),
         TablePrinter::fmt(result.phases.seconds(Phase::kReduction), 3),
         TablePrinter::fmt_bytes(static_cast<double>(result.comm_bytes))});
  }
  table.print();
  std::printf("\nHierarchical aggregation routes (ranks_per_node - 1)/"
              "ranks_per_node of the\ncontributions through cheap intra-node "
              "windows instead of the global tree.\n");
  return 0;
}
