// Ablation for paper §III-B: "simple parallelization techniques - such as
// taking a fixed number of samples before each check of the stopping
// condition - fail to overlap computation and aggregation and are known to
// not scale well". Compares the lockstep driver against the epoch-based
// driver on the same instance and cluster shapes.
#include "bc/lockstep.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.options.describe("instance", "proxy instance to run");
  config.finish("SIII-B ablation: lockstep vs epoch-based.");
  bench::print_preamble("Ablation - lockstep vs epoch-based parallelization",
                        "paper §III-B", config);

  const auto& spec = gen::instance_by_name(
      config.options.get_string("instance", "wikipedia-proxy"));
  const auto graph = spec.build(config.scale, config.seed);
  std::printf("instance=%s |V|=%u\n\n", spec.name.c_str(),
              graph.num_vertices());

  TablePrinter table({"P", "epoch ADS (s)", "lockstep ADS (s)",
                      "epoch adv.", "epoch rate", "lockstep rate"});
  for (const int p : {1, 4, 16}) {
    // Synchronization cost is the object of study: finer rounds and a
    // slower fabric keep it visible above the sampling work.
    bc::KadabraOptions epoch_options = bench::bench_mpi_options(spec, config);
    epoch_options.engine.epoch_base = config.options.get_u64("n0base", 20);
    const bc::BcResult epoch_result = bc::kadabra_mpi(
        graph, epoch_options, p, 1, bench::bench_network(config, 2000.0));

    bc::LockstepOptions lockstep_options;
    lockstep_options.params = epoch_options.params;
    lockstep_options.epoch_base = epoch_options.engine.epoch_base;
    const bc::BcResult lockstep_result = bc::lockstep_mpi(
        graph, lockstep_options, p, 1, bench::bench_network(config, 2000.0));

    auto rate = [p](const bc::BcResult& result) {
      return result.adaptive_seconds > 0
                 ? static_cast<double>(result.samples_attempted) /
                       (result.adaptive_seconds * p)
                 : 0.0;
    };
    table.add_row(
        {std::to_string(p),
         TablePrinter::fmt(epoch_result.adaptive_seconds, 3),
         TablePrinter::fmt(lockstep_result.adaptive_seconds, 3),
         TablePrinter::fmt_ratio(lockstep_result.adaptive_seconds /
                                 epoch_result.adaptive_seconds),
         TablePrinter::fmt(rate(epoch_result), 0),
         TablePrinter::fmt(rate(lockstep_result), 0)});
  }
  table.print();
  std::printf("\nThe lockstep variant pays a full synchronization + "
              "blocking aggregation\nper round; its normalized sampling "
              "rate degrades with P while the\nepoch-based algorithm stays "
              "flat.\n");
  return 0;
}
