// Reproduces Figure 2b: breakdown of running time into the phases of the
// epoch-based MPI algorithm - diameter, calibration, epoch transition,
// non-blocking IBARRIER, blocking reduction, stopping-condition check -
// averaged over the instance suite, as a function of P.
//
// Expected shape: the sequential diameter + calibration share grows with P
// (it is the Amdahl term of Fig. 2a); transition/barrier stay small because
// they are overlapped with sampling; the blocking reduction is the only
// non-overlapped communication.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  bench::BenchConfig config(argc, argv);
  config.finish("Figure 2b: per-phase breakdown.");
  bench::print_preamble(
      "Figure 2b - phase breakdown of the MPI algorithm",
      "paper Fig. 2b (fractions of total running time, mean over suite)",
      config);

  static constexpr Phase kShown[] = {
      Phase::kDiameter, Phase::kCalibration, Phase::kSampling,
      Phase::kEpochTransition, Phase::kBarrier, Phase::kReduction,
      Phase::kStopCheck, Phase::kBroadcast};

  TablePrinter table({"P", "diameter", "calibration", "sampling",
                      "transition", "ibarrier", "reduction", "stop-check",
                      "broadcast"});
  for (const int p : bench::rank_sweep(config)) {
    std::array<double, std::size(kShown)> fractions{};
    int counted = 0;
    for (const auto& spec : config.suite()) {
      const auto graph = spec.build(config.scale, config.seed);
      const bc::KadabraOptions options =
          bench::bench_mpi_options(spec, config);
      const bc::BcResult result = bc::kadabra_mpi(
          graph, options, p, /*ranks_per_node=*/1, bench::bench_network(config));
      const double total = result.phases.total_s();
      if (total <= 0) continue;
      for (std::size_t i = 0; i < std::size(kShown); ++i)
        fractions[i] += result.phases.seconds(kShown[i]) / total;
      ++counted;
    }
    std::vector<std::string> row{std::to_string(p)};
    for (const double fraction : fractions)
      row.push_back(TablePrinter::fmt(fraction / counted * 100.0, 1) + "%");
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nPaper shape: blue+orange (diameter+calibration) grow with P; "
      "green+red\n(transition+ibarrier) stay overlapped; violet (reduction) "
      "is the only\nnon-overlapped communication.\n");
  return 0;
}
