// Autotune walkthrough: measure the communication substrate once, persist
// the tuning profile, reload it, and let it configure the engine for a
// betweenness run - the tune/ subsystem end to end.
//
//   ./autotune [ranks=4] [threads=2] [rpn=2] [scale=10] [rounds=5]
//              [profile=autotune_profile.txt]
#include <cstdio>
#include <memory>

#include "bc/kadabra.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"
#include "tune/tuner.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  const int ranks = static_cast<int>(
      options.get_u64("ranks", 4, "simulated MPI ranks"));
  const int threads = static_cast<int>(
      options.get_u64("threads", 2, "sampling threads per rank"));
  const int rpn = static_cast<int>(
      options.get_u64("rpn", 2, "ranks per compute node"));
  const auto scale = static_cast<std::uint32_t>(
      options.get_u64("scale", 10, "log2 vertices of the demo graph"));
  const auto rounds = static_cast<int>(
      options.get_u64("rounds", 5, "microbench measurement rounds"));
  const double latency_us =
      options.get_double("latency_us", 500.0, "inter-node latency (us)");
  const double eps = options.get_double("eps", 0.05, "betweenness epsilon");
  const std::string path = options.get_string(
      "profile", "autotune_profile.txt", "profile file to write and reload");
  options.finish("Capture, persist, and reuse a tune/ profile.");

  // 1. Capture: microbenchmark the collective patterns on this shape.
  mpisim::NetworkModel network;
  network.remote_latency_s = latency_us * 1e-6;
  network.dedicated_cores = true;
  tune::MicrobenchConfig micro;
  micro.num_ranks = ranks;
  micro.ranks_per_node = rpn;
  micro.threads_per_rank = threads;
  micro.measure_rounds = rounds;
  micro.network = network;
  std::printf("microbenchmarking P=%d T=%d rpn=%d (oversubscription %.1fx)"
              "...\n",
              ranks, threads, rpn, tune::oversubscription_factor(micro));
  const tune::TuningProfile captured = tune::capture_profile(micro);
  for (std::size_t p = 0; p < tune::kNumPatterns; ++p) {
    const auto pattern = static_cast<tune::Pattern>(p);
    if (!captured.model.has(pattern)) continue;
    const tune::AlphaBeta& line = captured.model.line(pattern);
    std::printf("  %-18s alpha = %8.1f us   beta = %7.3f ns/byte\n",
                tune::pattern_name(pattern), line.alpha_s * 1e6,
                line.beta_s_per_byte * 1e9);
  }

  // 2. Persist and reload: the profile round-trips through a plain
  //    key=value text file, so one tuning run serves many workloads.
  if (!captured.save(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const auto reloaded = tune::TuningProfile::load(path);
  if (!reloaded) {
    std::fprintf(stderr, "cannot reload %s\n", path.c_str());
    return 1;
  }
  std::printf("profile saved to %s and reloaded\n\n", path.c_str());

  // 3. Reuse: hand the reloaded profile to KADABRA and let it decide the
  //    engine knobs the paper hand-ablates.
  gen::RmatParams gen_params;
  gen_params.scale = scale;
  gen_params.edge_factor = 8.0;
  const graph::Graph graph =
      graph::largest_component(gen::rmat(gen_params, /*seed=*/42));
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  bc::KadabraOptions bc_options;
  bc_options.params.epsilon = eps;
  bc_options.params.delta = 0.1;
  bc_options.auto_tune = std::make_shared<tune::TuningProfile>(*reloaded);
  const bc::BcResult result =
      bc::kadabra_mpi(graph, bc_options, ranks, rpn, network);

  const engine::EngineOptions& used = result.engine_used;
  std::printf("\ntuned engine configuration:\n");
  std::printf("  aggregation      = %s\n",
              engine::aggregation_name(used.aggregation));
  std::printf("  hierarchical     = %s\n", used.hierarchical ? "yes" : "no");
  std::printf("  frame_rep        = %s\n",
              epoch::frame_rep_name(used.frame_rep));
  std::printf("  threads_per_rank = %d\n", used.threads_per_rank);
  std::printf("  epoch_base       = %llu (max epoch %llu)\n",
              static_cast<unsigned long long>(used.epoch_base),
              static_cast<unsigned long long>(used.max_epoch_length));
  std::printf("\nKADABRA: %llu samples in %llu epochs, %.3f s total\n",
              static_cast<unsigned long long>(result.samples),
              static_cast<unsigned long long>(result.epochs),
              result.total_seconds);
  return 0;
}
