// A centrality service in miniature: ONE api::Session pinned to a
// (graph, cluster shape), a batch of mixed typed queries running against
// it, and the per-query reuse savings the session-oriented API exists for:
//   * repeated betweenness queries at the same (eps, delta) skip the
//     diameter + calibration phases entirely (cached KadabraWarmState);
//   * repeated mean-distance queries skip the range probe;
//   * the tuning profile is captured/loaded once and reused by everything.
//
//   ./service_batch [scale=11] [ranks=4] [threads=2] [repeat=3]
#include <cstdio>

#include "api/session.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("scale", "log2 vertices of the service graph");
  options.describe("ranks", "simulated MPI ranks");
  options.describe("threads", "sampling threads per rank");
  options.describe("repeat", "repetitions of the betweenness query");
  options.describe("auto_tune",
                   "capture a tuning profile at the first query and reuse "
                   "it for the whole batch");
  options.finish("One session, a batch of mixed queries, reuse savings.");

  gen::RmatParams gen_params;
  gen_params.scale =
      static_cast<std::uint32_t>(options.get_u64("scale", 11));
  gen_params.edge_factor = 16.0;
  const graph::Graph graph =
      graph::largest_component(gen::rmat(gen_params, 77));
  std::printf("service graph: %u vertices, %llu edges\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  api::Config config = api::Config::from_env();
  config.ranks = static_cast<int>(options.get_u64("ranks", 4));
  config.threads = static_cast<int>(options.get_u64("threads", 2));
  if (options.get_bool("auto_tune", false)) config.auto_tune = true;
  api::Session session(graph, config);
  if (!session.status().ok) {
    std::fprintf(stderr, "session: %s\n", session.status().message.c_str());
    return 1;
  }
  std::printf("session: %d ranks x %d threads\n\n", config.ranks,
              config.threads);

  // The mixed batch a service might see: repeated betweenness traffic at
  // one accuracy, a top-k request at the same accuracy, a closeness
  // ranking, and two mean-distance probes.
  std::vector<api::Query> batch;
  const auto repeat = options.get_u64("repeat", 3);
  for (std::uint64_t i = 0; i < repeat; ++i)
    batch.push_back(api::BetweennessQuery{.epsilon = 0.1});
  batch.push_back(api::BetweennessQuery{.epsilon = 0.1, .top_k = 10});
  batch.push_back(api::ClosenessRankQuery{.epsilon = 0.1, .top_k = 10});
  batch.push_back(api::MeanDistanceQuery{.epsilon = 0.25});
  batch.push_back(api::MeanDistanceQuery{.epsilon = 0.2});

  std::printf("%-4s %-14s %9s %7s %9s %11s %11s %9s\n", "#", "algorithm",
              "samples", "epochs", "total s", "diam+cal s", "calibration",
              "profile");
  const std::vector<api::Result> results = session.run_batch(batch);
  double saved_seconds = 0.0;
  double first_prepare_seconds = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const api::Result& result = results[i];
    if (!result.status.ok) {
      std::printf("%-4zu FAILED: %s\n", i, result.status.message.c_str());
      continue;
    }
    const double prepare_seconds =
        result.phases.seconds(Phase::kDiameter) +
        result.phases.seconds(Phase::kCalibration);
    if (result.algorithm == "kadabra") {
      if (result.calibration_reused) {
        saved_seconds += first_prepare_seconds;
      } else {
        first_prepare_seconds = prepare_seconds;
      }
    }
    std::printf("%-4zu %-14s %9llu %7llu %9.3f %11.4f %11s %9s\n", i,
                result.algorithm.c_str(),
                static_cast<unsigned long long>(result.samples),
                static_cast<unsigned long long>(result.epochs),
                result.total_seconds, prepare_seconds,
                result.calibration_reused ? "reused" : "computed",
                result.profile_reused ? "reused" : "-");
  }
  std::printf("\nreuse savings: ~%.4f s of diameter + calibration skipped "
              "across the batch\n(every 'reused' betweenness query ran zero "
              "calibration epochs - its kDiameter\nand kCalibration phase "
              "stats are exactly zero).\n",
              saved_seconds);
  return 0;
}
