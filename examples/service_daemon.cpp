// The service tier in miniature: a Dispatcher fronting two bound graphs,
// two tenants with unequal weights submitting one interleaved batch, and a
// simulated daemon restart that reloads calibration from the warm store
// instead of recomputing it.
//
// What to look for in the output:
//   * the per-tenant table - "prio" (weight 2) gets its queries dispatched
//     ahead of "best_effort" (weight 1) whenever both are waiting, which
//     shows up as lower queue latency at equal query counts;
//   * the restart block - the second daemon instance reports every stored
//     calibration loaded and every betweenness query answered with ZERO
//     diameter/calibration seconds (calibration: reused).
//
//   ./service_daemon [scale=10] [ranks=2] [pool=2] [repeat=2]
//                    [store=/tmp/distbc_daemon_store]
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/components.hpp"
#include "service/dispatcher.hpp"
#include "service/session_pool.hpp"
#include "support/options.hpp"

namespace {

using namespace distbc;

struct Submitted {
  std::string tenant;
  std::string graph_id;
  service::Ticket ticket;
};

// One daemon lifetime: bind both graphs, replay the two-tenant batch as a
// paused backlog (so the fair scheduler - not arrival order - decides the
// dispatch order), print per-tenant latency, and report calibration reuse.
int run_daemon(const char* title,
               const std::vector<std::pair<std::string,
                                           std::shared_ptr<const graph::Graph>>>&
                   graphs,
               const api::Config& config, std::uint64_t repeat) {
  std::printf("--- %s ---\n", title);
  service::Dispatcher dispatcher;
  for (const auto& [graph_id, graph] : graphs) {
    const api::Status bound = dispatcher.bind(graph_id, graph, config);
    if (!bound.ok) {
      std::fprintf(stderr, "bind(%s): %s\n", graph_id.c_str(),
                   bound.message.c_str());
      return 1;
    }
  }
  dispatcher.set_tenant_weight("prio", 2.0);
  dispatcher.set_tenant_weight("best_effort", 1.0);

  dispatcher.pause();  // build a backlog so fair scheduling is visible
  std::vector<Submitted> submitted;
  for (std::uint64_t round = 0; round < repeat; ++round) {
    for (const auto& [graph_id, graph] : graphs) {
      for (const char* tenant : {"prio", "best_effort"}) {
        submitted.push_back(
            {tenant, graph_id,
             dispatcher.submit({tenant, graph_id,
                                api::BetweennessQuery{.epsilon = 0.05}})});
        submitted.push_back(
            {tenant, graph_id,
             dispatcher.submit({tenant, graph_id,
                                api::MeanDistanceQuery{.epsilon = 0.2}})});
      }
    }
  }
  dispatcher.resume();
  dispatcher.drain();

  struct TenantRow {
    std::uint64_t queries = 0;
    std::uint64_t reused = 0;
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
    double prepare_seconds = 0.0;  // diameter + calibration phase time
  };
  std::map<std::string, TenantRow> rows;
  for (const Submitted& entry : submitted) {
    const service::Response& response = entry.ticket.wait();
    if (!response.status.ok) {
      std::fprintf(stderr, "query failed: %s\n",
                   response.status.message.c_str());
      return 1;
    }
    TenantRow& row = rows[entry.tenant];
    ++row.queries;
    if (response.result.calibration_reused) ++row.reused;
    row.queue_seconds += response.queue_seconds;
    row.run_seconds += response.run_seconds;
    row.prepare_seconds += response.result.phases.seconds(Phase::kDiameter) +
                           response.result.phases.seconds(Phase::kCalibration);
  }

  std::printf("%-12s %8s %12s %12s %12s %9s\n", "tenant", "queries",
              "avg queue ms", "avg run ms", "diam+cal s", "reused");
  for (const auto& [tenant, row] : rows) {
    const double n = static_cast<double>(row.queries);
    std::printf("%-12s %8llu %12.2f %12.2f %12.4f %6llu/%llu\n",
                tenant.c_str(),
                static_cast<unsigned long long>(row.queries),
                row.queue_seconds / n * 1e3, row.run_seconds / n * 1e3,
                row.prepare_seconds,
                static_cast<unsigned long long>(row.reused),
                static_cast<unsigned long long>(row.queries));
  }
  for (const auto& [graph_id, graph] : graphs) {
    const service::PoolStats stats = dispatcher.pool(graph_id)->stats();
    std::printf("%-8s pool: %llu completed, %llu calibration reuses, "
                "%llu stored, %llu loaded from store\n",
                graph_id.c_str(),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.calibration_reuses),
                static_cast<unsigned long long>(stats.store_saves),
                static_cast<unsigned long long>(stats.store_states_loaded));
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("scale", "log2 vertices of the social graph");
  options.describe("ranks", "simulated MPI ranks");
  options.describe("pool", "session replicas per bound graph");
  options.describe("repeat", "batch repetitions per (tenant, graph)");
  options.describe("store", "warm-store directory (calibration survives "
                            "restarts)");
  options.finish("Two-graph, two-tenant query daemon with a warm restart.");

  gen::RmatParams rmat_params;
  rmat_params.scale =
      static_cast<std::uint32_t>(options.get_u64("scale", 10));
  rmat_params.edge_factor = 12.0;
  gen::RoadParams road_params;
  road_params.width = 32;
  road_params.height = 12;
  std::vector<std::pair<std::string, std::shared_ptr<const graph::Graph>>>
      graphs;
  graphs.emplace_back("social",
                      std::make_shared<const graph::Graph>(
                          graph::largest_component(gen::rmat(rmat_params, 77))));
  graphs.emplace_back("road",
                      std::make_shared<const graph::Graph>(
                          graph::largest_component(gen::road(road_params, 78))));
  for (const auto& [graph_id, graph] : graphs)
    std::printf("%-8s %u vertices, %llu edges\n", graph_id.c_str(),
                graph->num_vertices(),
                static_cast<unsigned long long>(graph->num_edges()));

  const std::string store =
      options.get_string("store", (std::filesystem::temp_directory_path() /
                                   "distbc_daemon_store")
                                      .string());
  std::filesystem::remove_all(store);

  api::Config config = api::Config::from_env();
  config.ranks = static_cast<int>(options.get_u64("ranks", 2));
  config.threads = 1;
  config.deterministic = true;
  config.virtual_streams = 4;
  config.service_pool_size = static_cast<int>(options.get_u64("pool", 2));
  config.service_warm_store = store;
  std::printf("daemon: pool=%d x %d ranks, warm store at %s\n\n",
              config.service_pool_size, config.ranks, store.c_str());

  const std::uint64_t repeat = options.get_u64("repeat", 2);
  // First lifetime calibrates from scratch and populates the store ...
  if (const int rc =
          run_daemon("daemon lifetime 1 (cold store)", graphs, config, repeat);
      rc != 0)
    return rc;
  // ... the second one starts warm: calibration is loaded at pool
  // construction and every betweenness query reuses it immediately.
  if (const int rc = run_daemon("daemon lifetime 2 (restart, warm store)",
                                graphs, config, repeat);
      rc != 0)
    return rc;
  std::printf("lifetime 2 loaded its calibration from the store: zero\n"
              "diameter/calibration work after the restart (diam+cal s is "
              "0.0000\nand every betweenness query shows 'reused').\n");
  std::filesystem::remove_all(store);
  return 0;
}
