// Road networks are the paper's hard case for shared memory: high diameter
// makes every sample an expensive BFS and the algorithm needs many epochs
// (the largest road instance took 14 hours at eps = 0.001 on one node).
// This example finds the most "between" intersections of a road-like
// network and shows the distinctive statistics: many epochs, tiny
// communication volume per epoch.
//
//   ./road_network [width=220] [height=70] [eps=0.02] [ranks=8]
#include <cstdio>

#include "bc/kadabra.hpp"
#include "gen/road.hpp"
#include "graph/diameter.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("width", "road-grid width");
  options.describe("height", "road-grid height");
  options.describe("eps", "betweenness epsilon");
  options.describe("ranks", "simulated MPI ranks");
  options.finish("Betweenness on a high-diameter road proxy.");

  gen::RoadParams gen_params;
  gen_params.width =
      static_cast<std::uint32_t>(options.get_u64("width", 220));
  gen_params.height =
      static_cast<std::uint32_t>(options.get_u64("height", 70));
  const graph::Graph graph = gen::road(gen_params, /*seed=*/3);
  const auto diameter = graph::ifub_diameter(graph);
  std::printf("road proxy: %u intersections, %llu segments, diameter %u "
              "(found with %llu BFS)\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              diameter.diameter,
              static_cast<unsigned long long>(diameter.num_bfs));

  bc::KadabraOptions bc_options;
  bc_options.params.epsilon = options.get_double("eps", 0.02);
  bc_options.params.seed = 11;
  const int ranks = static_cast<int>(options.get_u64("ranks", 8));
  const bc::BcResult result = bc::kadabra_mpi(graph, bc_options, ranks);

  std::printf("\nKADABRA on %d ranks: %llu samples, %llu epochs, %.2f s "
              "(ADS %.2f s)\n",
              ranks, static_cast<unsigned long long>(result.samples),
              static_cast<unsigned long long>(result.epochs),
              result.total_seconds, result.adaptive_seconds);
  std::printf("communication: %.1f KiB per epoch (road graphs: many epochs, "
              "small frames)\n",
              result.epochs > 0
                  ? static_cast<double>(result.comm_bytes) / result.epochs /
                        1024.0
                  : 0.0);

  std::printf("\nbusiest intersections (grid coordinates):\n");
  for (const graph::Vertex v : result.top_k(10)) {
    std::printf("  (%4u, %4u)  b~ = %.5f\n", v % gen_params.width,
                v / gen_params.width, result.scores[v]);
  }
  std::printf("\nExpected: the busiest intersections cluster around the "
              "grid's central\ncorridor - the cut all long routes cross.\n");
  return 0;
}
