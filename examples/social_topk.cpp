// The paper's motivating scenario (Section I): on social networks only a
// handful of vertices have betweenness above 0.01, so reliably identifying
// the top-k requires a small epsilon - which is exactly what the MPI
// parallelization makes affordable.
//
// This example runs the same social-network proxy at eps = 0.01 and
// eps = 0.001-scaled-equivalents and reports how many of the true top-k the
// approximation recovers at each accuracy.
//
//   ./social_topk [k=20] [scale=12]
#include <algorithm>
#include <cstdio>
#include <set>

#include "bc/brandes_parallel.hpp"
#include "bc/kadabra.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("k", "top-k size to report");
  options.describe("scale", "log2 vertices of the social proxy");
  options.finish("Top-k central vertices at decreasing epsilon.");
  const std::size_t k = options.get_u64("k", 20);

  gen::RmatParams gen_params;
  gen_params.scale =
      static_cast<std::uint32_t>(options.get_u64("scale", 12));
  gen_params.edge_factor = 24.0;
  const graph::Graph graph =
      graph::largest_component(gen::rmat(gen_params, 7));
  std::printf("social proxy: %u vertices, %llu edges\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  const bc::BcResult exact = bc::brandes_parallel(graph, 8);
  const auto true_top = exact.top_k(k);
  const std::set<graph::Vertex> truth(true_top.begin(), true_top.end());
  std::printf("ground truth: top-%zu scores range %.5f .. %.5f\n", k,
              exact.scores[true_top.back()], exact.scores[true_top.front()]);
  std::size_t above_001 = 0;
  for (const double score : exact.scores) above_001 += score > 0.01;
  std::printf("vertices with b > 0.01: %zu of %u (the paper's point: very "
              "few)\n\n",
              above_001, graph.num_vertices());

  for (const double eps : {0.05, 0.02, 0.008}) {
    bc::KadabraOptions bc_options;
    bc_options.params.epsilon = eps;
    bc_options.params.seed = 99;
    const bc::BcResult approx =
        bc::kadabra_mpi(graph, bc_options, /*num_ranks=*/8);
    const auto found = approx.top_k(k);
    std::size_t hits = 0;
    for (const graph::Vertex v : found) hits += truth.contains(v);
    std::printf("eps = %.3f: %llu samples, %.2f s, recovered %zu/%zu of the "
                "true top-%zu\n",
                eps, static_cast<unsigned long long>(approx.samples),
                approx.total_seconds, hits, k, k);
  }
  std::printf("\nSmaller eps -> more of the top-k reliably identified, at "
              "higher sampling cost;\nthe MPI parallelization is what makes "
              "the small-eps runs practical at scale.\n");
  return 0;
}
