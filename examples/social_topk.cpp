// The paper's motivating scenario (Section I): on social networks only a
// handful of vertices have betweenness above 0.01, so reliably identifying
// the top-k requires a small epsilon - which is exactly what the MPI
// parallelization makes affordable.
//
// Session-API version: one api::Session serves the whole approximate
// epsilon sweep (the diameter estimate inside each calibration never
// leaves it); the exact ground truth runs as an exact-Brandes query on a
// second session configured with more threads.
//
//   ./social_topk [k=20] [scale=12]
#include <algorithm>
#include <cstdio>
#include <set>

#include "api/session.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("k", "top-k size to report");
  options.describe("scale", "log2 vertices of the social proxy");
  options.finish("Top-k central vertices at decreasing epsilon.");
  const std::size_t k = options.get_u64("k", 20);

  gen::RmatParams gen_params;
  gen_params.scale =
      static_cast<std::uint32_t>(options.get_u64("scale", 12));
  gen_params.edge_factor = 24.0;
  const graph::Graph graph =
      graph::largest_component(gen::rmat(gen_params, 7));
  std::printf("social proxy: %u vertices, %llu edges\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  api::Config config = api::Config::from_env();
  config.ranks = 8;
  config.threads = 1;
  config.seed = 99;
  api::Session session(graph, config);

  // Ground truth: the exact-Brandes path of the same session (config
  // threads drive the Brandes parallelism too).
  api::Config exact_config = config;
  exact_config.threads = 8;
  api::Session exact_session(graph, exact_config);
  api::BetweennessQuery exact_query;
  exact_query.exact = true;
  exact_query.top_k = k;
  const api::Result exact = exact_session.run(exact_query);
  if (!exact.status.ok) {
    std::fprintf(stderr, "exact query failed: %s\n",
                 exact.status.message.c_str());
    return 1;
  }
  std::set<graph::Vertex> truth;
  for (const auto& [vertex, score] : exact.top_k) truth.insert(vertex);
  std::printf("ground truth: top-%zu scores range %.5f .. %.5f\n", k,
              exact.top_k.back().second, exact.top_k.front().second);
  std::size_t above_001 = 0;
  for (const double score : exact.scores) above_001 += score > 0.01;
  std::printf("vertices with b > 0.01: %zu of %u (the paper's point: very "
              "few)\n\n",
              above_001, graph.num_vertices());

  for (const double eps : {0.05, 0.02, 0.008}) {
    api::BetweennessQuery query;
    query.epsilon = eps;
    query.top_k = k;
    const api::Result approx = session.run(query);
    if (!approx.status.ok) {
      std::fprintf(stderr, "query failed: %s\n",
                   approx.status.message.c_str());
      return 1;
    }
    std::size_t hits = 0;
    for (const auto& [vertex, score] : approx.top_k)
      hits += truth.contains(vertex);
    std::printf("eps = %.3f: %llu samples, %.2f s, recovered %zu/%zu of the "
                "true top-%zu\n",
                eps, static_cast<unsigned long long>(approx.samples),
                approx.total_seconds, hits, k, k);
  }
  std::printf("\nSmaller eps -> more of the top-k reliably identified, at "
              "higher sampling cost;\nthe MPI parallelization is what makes "
              "the small-eps runs practical at scale.\n");
  return 0;
}
