// Quickstart: approximate betweenness centrality through the Session API -
// one distbc::api::Session binds the graph to a simulated cluster, typed
// queries run on it, and the exact-Brandes oracle is just another query on
// the same session.
//
//   ./quickstart [eps=0.05] [ranks=4] [threads=2] [scale=12]
#include <cmath>
#include <cstdio>

#include "api/session.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("scale", "log2 vertices of the RMAT proxy");
  options.describe("eps", "betweenness epsilon");
  options.describe("threads", "sampling threads per rank");
  options.describe("ranks", "simulated MPI ranks");
  options.finish("Quickstart: KADABRA on a simulated cluster vs Brandes.");

  // 1. Generate a power-law graph and keep its largest connected component
  //    (the paper's preprocessing for every instance).
  gen::RmatParams gen_params;
  gen_params.scale =
      static_cast<std::uint32_t>(options.get_u64("scale", 12));
  gen_params.edge_factor = 16.0;
  const graph::Graph graph =
      graph::largest_component(gen::rmat(gen_params, /*seed=*/42));
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. One session = graph x cluster shape. Config resolves defaults, the
  //    DISTBC_* environment, and these programmatic writes in that order.
  api::Config config = api::Config::from_env();
  config.ranks = static_cast<int>(options.get_u64("ranks", 4));
  config.threads = static_cast<int>(options.get_u64("threads", 2));
  api::Session session(graph, config);

  // 3. Approximate betweenness, top-10 included in the same query.
  api::BetweennessQuery query;
  query.epsilon = options.get_double("eps", 0.05);
  query.delta = 0.1;
  query.top_k = 10;
  const api::Result approx = session.run(query);
  if (!approx.status.ok) {
    std::fprintf(stderr, "query failed: %s\n", approx.status.message.c_str());
    return 1;
  }
  std::printf("KADABRA: %llu samples in %llu epochs, %.3f s total\n",
              static_cast<unsigned long long>(approx.samples),
              static_cast<unsigned long long>(approx.epochs),
              approx.total_seconds);

  std::printf("\ntop 10 vertices by approximate betweenness:\n");
  for (const auto& [vertex, score] : approx.top_k)
    std::printf("  vertex %8u  b~ = %.5f\n", vertex, score);

  // 4. Verify the (eps, delta) guarantee against the exact oracle - the
  //    Brandes fallback is one more query on the same session.
  api::BetweennessQuery exact_query;
  exact_query.exact = true;
  const api::Result exact = session.run(exact_query);
  double max_diff = 0.0;
  for (std::size_t v = 0; v < exact.scores.size(); ++v)
    max_diff = std::max(max_diff,
                        std::fabs(approx.scores[v] - exact.scores[v]));
  std::printf("\nmax |b~ - b| = %.5f (guaranteed <= %.3f with probability "
              "0.9)\n",
              max_diff, query.epsilon);
  return 0;
}
