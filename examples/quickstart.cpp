// Quickstart: approximate betweenness centrality on a synthetic social
// network with the epoch-based MPI algorithm, and sanity-check the result
// against exact Brandes.
//
//   ./quickstart [eps=0.05] [ranks=4] [threads=2] [scale=12]
#include <cstdio>

#include "bc/brandes_parallel.hpp"
#include "bc/kadabra.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("scale", "log2 vertices of the RMAT proxy");
  options.describe("eps", "betweenness epsilon");
  options.describe("threads", "sampling threads per rank");
  options.describe("ranks", "simulated MPI ranks");
  options.finish("Quickstart: KADABRA on a simulated cluster vs Brandes.");

  // 1. Generate a power-law graph and keep its largest connected component
  //    (the paper's preprocessing for every instance).
  gen::RmatParams gen_params;
  gen_params.scale =
      static_cast<std::uint32_t>(options.get_u64("scale", 12));
  gen_params.edge_factor = 16.0;
  const graph::Graph graph =
      graph::largest_component(gen::rmat(gen_params, /*seed=*/42));
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Approximate betweenness on a simulated cluster.
  bc::KadabraOptions bc_options;
  bc_options.params.epsilon = options.get_double("eps", 0.05);
  bc_options.params.delta = 0.1;
  bc_options.engine.threads_per_rank =
      static_cast<int>(options.get_u64("threads", 2));
  const int ranks = static_cast<int>(options.get_u64("ranks", 4));
  const bc::BcResult approx = bc::kadabra_mpi(graph, bc_options, ranks);

  std::printf("KADABRA: %llu samples in %llu epochs (budget omega = %llu), "
              "%.3f s total\n",
              static_cast<unsigned long long>(approx.samples),
              static_cast<unsigned long long>(approx.epochs),
              static_cast<unsigned long long>(approx.omega),
              approx.total_seconds);

  // 3. Show the top-10 central vertices.
  std::printf("\ntop 10 vertices by approximate betweenness:\n");
  for (const graph::Vertex v : approx.top_k(10))
    std::printf("  vertex %8u  b~ = %.5f\n", v, approx.scores[v]);

  // 4. Verify the (eps, delta) guarantee against the exact oracle.
  const bc::BcResult exact = bc::brandes_parallel(graph, 8);
  std::printf("\nmax |b~ - b| = %.5f (guaranteed <= %.3f with probability "
              "0.9)\n",
              approx.max_abs_difference(exact), bc_options.params.epsilon);
  return 0;
}
