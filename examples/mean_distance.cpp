// Demonstrates the generic adaptive-sampling driver (the paper's
// future-work claim made concrete): two more adaptive sampling algorithms -
// mean shortest-path distance (scalar Bernstein stopping rule) and harmonic
// closeness centrality (per-vertex adaptive rule, like KADABRA's) - running
// on the exact same epoch-based MPI machinery that powers betweenness.
//
//   ./mean_distance [scale=13] [eps=0.05] [ranks=8]
#include <cstdio>

#include "adaptive/closeness.hpp"
#include "adaptive/mean_distance.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("ranks", "simulated MPI ranks");
  options.describe("eps", "confidence half-width target");
  options.describe("scale", "log2 vertices of the social proxy");
  options.finish("Adaptive mean-distance and closeness estimation.");
  const int ranks = static_cast<int>(options.get_u64("ranks", 8));

  adaptive::MeanDistanceParams params;
  params.epsilon = options.get_double("eps", 0.05);
  params.engine.threads_per_rank = 1;

  // A small-world social network vs a high-diameter road network: the same
  // estimator adapts its sample count to the distance variance of each.
  gen::RmatParams rmat_params;
  rmat_params.scale =
      static_cast<std::uint32_t>(options.get_u64("scale", 13));
  rmat_params.edge_factor = 16.0;
  const graph::Graph social =
      graph::largest_component(gen::rmat(rmat_params, 31));

  gen::RoadParams road_params;
  road_params.width = 160;
  road_params.height = 60;
  const graph::Graph road = gen::road(road_params, 32);

  struct Case {
    const char* name;
    const graph::Graph* graph;
    double eps_factor;  // absolute precision scaled to the distance regime
  };
  for (const Case& c : {Case{"social (small world)", &social, 1.0},
                        Case{"road (high diameter)", &road, 10.0}}) {
    adaptive::MeanDistanceParams case_params = params;
    case_params.epsilon = params.epsilon * c.eps_factor;
    const auto result =
        adaptive::mean_distance_mpi(*c.graph, case_params, ranks);
    std::printf("%-22s |V|=%7u  mean distance = %6.3f +- %.3f hops  "
                "(stddev %.2f, %llu samples, %llu epochs, %.2f s)\n",
                c.name, c.graph->num_vertices(), result.mean,
                result.half_width, result.stddev,
                static_cast<unsigned long long>(result.samples),
                static_cast<unsigned long long>(result.epochs),
                result.total_seconds);
  }
  std::printf("\nThe high-variance road network needs far more samples even "
              "at 10x looser\nabsolute precision - adaptivity spends the "
              "budget exactly where it is needed.\n");

  // Second algorithm: per-vertex harmonic closeness on the social proxy.
  adaptive::ClosenessParams closeness_params;
  closeness_params.epsilon = options.get_double("eps", 0.05);
  const auto closeness =
      adaptive::closeness_mpi(social, closeness_params, ranks);
  std::printf("\nharmonic closeness on the social proxy (%llu BFS sources, "
              "%llu epochs):\n",
              static_cast<unsigned long long>(closeness.samples),
              static_cast<unsigned long long>(closeness.epochs));
  for (const graph::Vertex v : closeness.top_k(5))
    std::printf("  vertex %6u  h~ = %.4f\n", v, closeness.scores[v]);
  return 0;
}
