// Churn monitor: incremental betweenness on a mutating graph - one
// api::Session absorbs a stream of edge batches through apply(EdgeBatch)
// and re-serves top-k betweenness after each one, paying only for the
// samples the batch invalidated (src/dynamic/ sample ledger).
//
//   ./churn_monitor [vertices=2000] [rounds=6] [batch=8] [topk=5] [eps=0.05]
#include <cstdio>
#include <vector>

#include "api/session.hpp"
#include "dynamic/edge_batch.hpp"
#include "gen/barabasi_albert.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"
#include "support/random.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("vertices", "Barabasi-Albert graph size");
  options.describe("rounds", "edge batches to apply");
  options.describe("batch", "edge insertions per batch");
  options.describe("topk", "ranking size to monitor");
  options.describe("eps", "betweenness epsilon");
  options.finish("Monitor top-k betweenness drift under edge churn.");
  const auto vertices =
      static_cast<graph::Vertex>(options.get_u64("vertices", 2000));
  const int rounds = static_cast<int>(options.get_u64("rounds", 6));
  const auto batch_edges = options.get_u64("batch", 8);
  const auto top_k = options.get_u64("topk", 5);

  // 1. A scale-free graph and a session over it. The incremental engine
  //    keys on the session's statistical config, so one session serves
  //    the whole monitoring loop.
  const graph::Graph graph = graph::largest_component(
      gen::barabasi_albert(vertices, /*attach=*/2, /*seed=*/7));
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));
  api::Config config = api::Config::from_env();
  api::Session session(graph, config);

  api::BetweennessQuery query;
  query.epsilon = options.get_double("eps", 0.05);
  query.incremental = true;  // keep the sample set alive across applies
  query.top_k = top_k;

  // 2. Baseline ranking before any churn.
  api::Result result = session.run(query);
  if (!result.status.ok) {
    std::fprintf(stderr, "query failed: %s\n", result.status.message.c_str());
    return 1;
  }
  std::printf("round 0 (initial, %llu samples): top-%llu =",
              static_cast<unsigned long long>(result.samples),
              static_cast<unsigned long long>(top_k));
  for (const auto& [vertex, score] : result.top_k)
    std::printf(" %u(%.4f)", vertex, score);
  std::printf("\n");
  std::vector<graph::Vertex> previous;
  for (const auto& [vertex, score] : result.top_k)
    previous.push_back(vertex);

  // 3. Churn loop: random absent edges arrive in batches; each apply
  //    keeps the clean samples and redraws only the dirty ones.
  Rng rng(99);
  for (int round = 1; round <= rounds; ++round) {
    dynamic::EdgeBatch batch;
    std::uint64_t queued = 0;
    const auto snapshot = session.dynamic_state() != nullptr
                              ? session.dynamic_state()->snapshot()
                              : nullptr;
    const graph::Graph& current = snapshot != nullptr ? *snapshot : graph;
    while (queued < batch_edges) {
      auto [x, y] = rng.next_distinct_pair(current.num_vertices());
      const auto u = static_cast<graph::Vertex>(std::min(x, y));
      const auto v = static_cast<graph::Vertex>(std::max(x, y));
      if (current.has_edge(u, v)) continue;
      batch.insert(u, v);
      ++queued;
    }
    const dynamic::ApplyReport report = session.apply(std::move(batch));
    if (!report.status.ok) {
      std::fprintf(stderr, "apply failed: %s\n",
                   report.status.message.c_str());
      return 1;
    }

    result = session.run(query);
    if (!result.status.ok) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status.message.c_str());
      return 1;
    }
    std::vector<graph::Vertex> ranking;
    for (const auto& [vertex, score] : result.top_k)
      ranking.push_back(vertex);
    std::uint64_t moved = 0;
    for (std::size_t i = 0; i < ranking.size(); ++i)
      moved += (i >= previous.size() || ranking[i] != previous[i]) ? 1 : 0;
    previous = ranking;

    std::printf(
        "round %d: +%llu edges, dirty %llu/%llu (%.1f%%), resampled %llu; "
        "top-%llu =",
        round, static_cast<unsigned long long>(report.edges_inserted),
        static_cast<unsigned long long>(report.samples_dirty),
        static_cast<unsigned long long>(report.samples_dirty +
                                        report.samples_retained),
        report.dirty_fraction() * 100.0,
        static_cast<unsigned long long>(report.samples_resampled),
        static_cast<unsigned long long>(top_k));
    for (const auto& [vertex, score] : result.top_k)
      std::printf(" %u(%.4f)", vertex, score);
    std::printf("  [%llu rank slots moved]\n",
                static_cast<unsigned long long>(moved));
  }
  return 0;
}
