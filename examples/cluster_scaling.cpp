// Demonstrates the library's cluster-facing API directly: build a simulated
// cluster with an explicit interconnect model, run the per-rank driver
// inside Runtime::run (the way a real MPI main() would call
// kadabra_mpi_rank), and report scaling.
//
//   ./cluster_scaling [scale=13] [eps=0.005] [latency_us=2]
#include <cstdio>
#include <mutex>

#include "bc/kadabra.hpp"
#include "gen/hyperbolic.hpp"
#include "graph/components.hpp"
#include "mpisim/runtime.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("scale", "log2 vertices of the hyperbolic proxy");
  options.describe("latency_us", "inter-node latency (us)");
  options.describe("eps", "betweenness epsilon");
  options.finish("Rank-scaling sweep on a simulated cluster.");

  gen::HyperbolicParams gen_params;
  gen_params.num_vertices =
      1u << static_cast<std::uint32_t>(options.get_u64("scale", 13));
  gen_params.average_degree = 30.0;
  const graph::Graph graph =
      graph::largest_component(gen::hyperbolic(gen_params, 21));
  std::printf("web proxy: %u vertices, %llu edges\n\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  mpisim::NetworkModel network;
  network.remote_latency_s = options.get_double("latency_us", 2.0) * 1e-6;

  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "ranks", "total(s)",
              "ADS(s)", "epochs", "speedup");
  double base_time = 0.0;
  for (const int ranks : {1, 2, 4, 8, 16}) {
    mpisim::RuntimeConfig config;
    config.num_ranks = ranks;
    config.ranks_per_node = 1;
    config.network = network;
    mpisim::Runtime runtime(config);

    bc::KadabraOptions bc_options;
    bc_options.params.epsilon = options.get_double("eps", 0.005);
    bc_options.params.seed = 5;

    // The explicit form of bc::kadabra_mpi(): our own rank main.
    bc::BcResult root_result;
    std::mutex mu;
    runtime.run([&](mpisim::Comm& world) {
      bc::BcResult local = bc::kadabra_mpi_rank(graph, bc_options, world);
      if (world.rank() == 0) {
        std::lock_guard lock(mu);
        root_result = std::move(local);
      }
    });

    if (ranks == 1) base_time = root_result.total_seconds;
    std::printf("%-8d %-10.2f %-10.2f %-10llu %.2fx\n", ranks,
                root_result.total_seconds, root_result.adaptive_seconds,
                static_cast<unsigned long long>(root_result.epochs),
                base_time / root_result.total_seconds);
  }
  std::printf("\nNear-linear scaling through P=8, flattening at 16 as the "
              "sequential phases\n(diameter, calibration) gain weight - the "
              "paper's Fig. 2a in miniature.\n");
  return 0;
}
