// Demonstrates the library's cluster-facing API: bind a graph to a
// simulated cluster shape through api::Session (which owns the runtime and
// the comm::Substrate construction - no direct mpisim plumbing here), run
// betweenness queries across rank counts, and report scaling plus the
// per-collective communication-volume breakdown (comm::CommVolume), tagged
// with the substrate that moved it.
//
//   ./cluster_scaling [scale=13] [eps=0.005] [latency_us=2]
//                     [frame_rep=dense|sparse|auto] [tree_radix=0|2|...]
//                     [rpn=1] [leader_radix=0|2|...]
//                     [sample_batch=1|8|...|0=auto]
//                     [substrate=mpisim|ncclsim]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "api/session.hpp"
#include "gen/hyperbolic.hpp"
#include "graph/components.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace distbc;
  const Options options(argc, argv);
  options.describe("scale", "log2 vertices of the hyperbolic proxy");
  options.describe("latency_us", "inter-node latency (us)");
  options.describe("eps", "betweenness epsilon");
  options.describe("frame_rep",
                   "wire representation of epoch frames (dense|sparse|auto)");
  options.describe("tree_radix",
                   "tree-merge fan-in for sparse images (0 = flat)");
  options.describe("rpn",
                   "simulated ranks per node (>1 enables the two-level "
                   "hierarchical path)");
  options.describe("leader_radix",
                   "leader-tree fan-in of the two-level path "
                   "(0 = inherit tree_radix; needs rpn>1)");
  options.describe("sample_batch",
                   "samples per traversal batch (1 = scalar, 0 = auto)");
  options.describe("substrate",
                   "comm backend the collectives run on (mpisim|ncclsim)");
  options.finish("Rank-scaling sweep on a simulated cluster.");

  gen::HyperbolicParams gen_params;
  gen_params.num_vertices =
      1u << static_cast<std::uint32_t>(options.get_u64("scale", 13));
  gen_params.average_degree = 30.0;
  const auto graph = std::make_shared<const graph::Graph>(
      graph::largest_component(gen::hyperbolic(gen_params, 21)));
  const std::string rep_name = options.get_string("frame_rep", "auto");
  const auto parsed_rep = epoch::frame_rep_from_name(rep_name);
  if (!parsed_rep) {
    std::fprintf(stderr,
                 "unknown frame_rep '%s' (valid: dense, sparse, auto)\n",
                 rep_name.c_str());
    return 2;
  }
  const std::string substrate_name = options.get_string("substrate", "mpisim");
  const auto substrate = comm::substrate_from_name(substrate_name);
  if (!substrate) {
    std::fprintf(stderr, "unknown substrate '%s' (valid: mpisim, ncclsim)\n",
                 substrate_name.c_str());
    return 2;
  }
  const epoch::FrameRep frame_rep = *parsed_rep;
  const auto tree_radix =
      static_cast<int>(options.get_u64("tree_radix", 0));
  const auto ranks_per_node =
      static_cast<int>(options.get_u64("rpn", 1));
  const auto leader_radix =
      static_cast<int>(options.get_u64("leader_radix", 0));
  const auto sample_batch =
      static_cast<int>(options.get_u64("sample_batch", 1));
  std::printf("web proxy: %u vertices, %llu edges, frame_rep=%s, "
              "tree_radix=%d, rpn=%d, leader_radix=%d, sample_batch=%d, "
              "substrate=%s\n\n",
              graph->num_vertices(),
              static_cast<unsigned long long>(graph->num_edges()),
              epoch::frame_rep_name(frame_rep), tree_radix, ranks_per_node,
              leader_radix, sample_batch, substrate_name.c_str());

  comm::NetworkModel network;
  network.remote_latency_s = options.get_double("latency_us", 2.0) * 1e-6;

  std::printf("%-8s %-10s %-10s %-8s %-9s %-12s %-12s %-12s\n", "ranks",
              "total(s)", "sample(s)", "epochs", "speedup", "reduce(B)",
              "merge(B)", "bcast(B)");
  double base_time = 0.0;
  for (const int ranks : {1, 2, 4, 8, 16}) {
    api::Config config;
    config.ranks = ranks;
    config.ranks_per_node = std::clamp(ranks_per_node, 1, ranks);
    config.network = network;
    config.comm_substrate = *substrate;
    config.seed = 5;
    config.frame_rep = frame_rep;
    config.tree_radix = tree_radix;
    config.hierarchical = config.ranks_per_node > 1;
    config.leader_radix = leader_radix;
    config.sample_batch = sample_batch;

    api::Session session(graph, config);
    api::BetweennessQuery query;
    query.epsilon = options.get_double("eps", 0.005);
    const api::Result result = session.run(query);
    if (!result.status.ok) {
      std::fprintf(stderr, "query failed: %s\n", result.status.message.c_str());
      return 1;
    }

    if (ranks == 1) base_time = result.total_seconds;
    const comm::CommVolume& volume = result.comm_volume;
    std::printf("%-8d %-10.2f %-10.2f %-8llu %-9.2f %-12llu %-12llu %-12llu\n",
                ranks, result.total_seconds,
                result.phases.seconds(Phase::kSampling),
                static_cast<unsigned long long>(result.epochs),
                base_time / result.total_seconds,
                static_cast<unsigned long long>(volume.reduce_bytes),
                static_cast<unsigned long long>(volume.reduce_merge_bytes),
                static_cast<unsigned long long>(volume.bcast_bytes));
  }
  std::printf("\nNear-linear scaling through P=8, flattening at 16 as the "
              "sequential phases\n(diameter, calibration) gain weight - the "
              "paper's Fig. 2a in miniature. With\nframe_rep=sparse|auto the "
              "reduce column collapses into the (far smaller)\nmerge column: "
              "aggregation bytes follow samples taken, not |V|. Substrate\n"
              "selection changes the modeled clock, never the scores.\n");
  return 0;
}
